"""Region superinstruction compilation (execution JIT).

The interpreter in :mod:`repro.sim.shard` dispatches every dynamic
instruction through the same generic ladder: scoreboard loops over operand
index tuples, a virtual ``storage.can_issue`` call, opcode classification,
``compute_result``'s closure tree, ``mark_pending`` loops.  All of that is
static per ``pc``.  This module walks each compiler region's straight-line
instruction sequence at arm time and ``compile()``s one specialized step
function per pc, with every static decision burned in:

* the scoreboard check unrolled over literal register/predicate indices;
* the operand-storage gate specialized per backend flavor (baseline/RFH:
  a CTA-residency set test; RegLess: a capacity-manager state + region
  *identity* test; RFV: a generic call, because its issue test is impure);
* operand fetches and opcode semantics inlined as one expression
  (immediates are prebuilt :class:`~repro.sim.values.LaneValues`);
* control resolution with branch targets and reconvergence pcs as
  literals, and writeback bookkeeping unrolled.

The driver installed as the shard's ``_try_issue`` instance attribute
keeps the interpreter's quick checks (exited / barrier / pipeline stall),
reconvergence pops and program-end exit synthesis, then tail-calls the
step for the current pc.  Everything the steps do is *bit-identical* to
the interpreter: same counter increments in the same order, same oracle
consultation order, same scheduler/storage notifications.

Fallback ladder (docs/performance.md has the full contract):

1. ``REPRO_JIT=0`` disables arming entirely — the PR 4 interpreter runs.
2. Arm-time per-shard checks refuse to arm (reason recorded in the jit
   report): a tracer or any instance-level override of ``issue`` /
   ``_writeback`` / ``_try_issue``; a storage or capacity manager whose
   exact class is not the stock one (fault injection swaps classes);
   working-set tracking; a storage whose compiled kernel is not the
   GPU's.
3. Per-pc: an instruction the generator cannot specialize gets a generic
   step that defers to the interpreter's ``_try_issue`` (counted under
   ``jit.fallback_issued``).
4. Mid-step surprises (divergence, guarded writes, barrier blocking) are
   handled inline by the generated code itself, bit-identically — they
   never need to bail out.

Compiled ``code`` objects are cached by generated source text, so
process-wide repeat arms of the same program+flavor skip ``compile()``
(the expensive part) and only re-``exec`` with fresh per-program globals.
"""

from __future__ import annotations

import heapq
import os
import time
from types import MethodType
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..energy.accounting import Counters
from ..obs.stalls import ISSUED
from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import Imm, Pred, Reg
from ..regfile.base import OperandStorage
from ..regfile.baseline import BaselineRF
from ..regfile.rfh import MRF, RFHStorage, _C_WRITE
from ..regfile.rfv import RFVStorage
from ..regless.backend import ReglessStorage
from ..regless.capacity import CapacityManager, WarpState
from .executor import _SALTS
from .oracle import FULL_MASK
from .scheduler import GTOScheduler, LRRScheduler, TwoLevelScheduler
from .shard import (
    Shard,
    _ACCT_PARK_BINS,
    _DEMOTE_BINS,
    _FAIL_KEEP,
    _FAIL_PARK,
    _ISSUE_OK,
    _LoadContinuation,
    _STORAGE_BINS,
    _Writeback,
)
from .values import LaneValues, ZERO
from . import warpbatch

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU

__all__ = ["arm_gpu", "collect_jit", "jit_enabled"]

#: generated-source -> compiled code object (compile() dominates arm cost;
#: exec with fresh globals is microseconds).
_CODE_CACHE: Dict[str, object] = {}


def jit_enabled() -> bool:
    """The ``REPRO_JIT`` escape hatch (default on)."""
    return os.environ.get("REPRO_JIT", "1") != "0"


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------


def _operand_expr(pc: int, k: int, operand) -> Optional[str]:
    """The inline fetch expression for one source operand (``rg`` must be
    bound to ``warp.regs`` by the caller when a Reg appears)."""
    if type(operand) is Reg:
        return f"rg.get({operand.index}, ZERO)"
    if type(operand) is Imm:
        return f"C{pc}_{k}"
    if type(operand) is Pred:
        return (
            f"LaneValues.random(warp.preds.get({operand.index}, 0)"
            f" ^ 0xA5A5)"
        )
    return None


def _value_expr(pc: int, insn: Instruction) -> Optional[str]:
    """The fused ``compute_result`` expression (mirrors
    ``executor._build_plan`` exactly, including ZERO defaults)."""
    exprs = []
    for k, s in enumerate(insn.srcs):
        e = _operand_expr(pc, k, s)
        if e is None:
            return None
        exprs.append(e)

    def e(i: int) -> str:
        return exprs[i] if i < len(exprs) else "ZERO"

    op = insn.opcode
    if op is Opcode.MOV or op is Opcode.CVT:
        return e(0)
    if op is Opcode.IADD:
        return f"{e(0)}.add({e(1)})"
    if op is Opcode.FADD:
        return f"{e(0)}.float_add({e(1)})"
    if op is Opcode.ISUB:
        return f"{e(0)}.sub({e(1)})"
    if op is Opcode.IMUL or op is Opcode.FMUL:
        return f"{e(0)}.mul({e(1)})"
    if op is Opcode.IMAD:
        return f"{e(0)}.mul({e(1)}).add({e(2)})"
    if op is Opcode.FFMA:
        return f"{e(0)}.mul({e(1)}).float_add({e(2)})"
    if op is Opcode.SHL:
        return f"{e(0)}.shl({e(1)})"
    salt = _SALTS.get(op, 0x3F)
    if len(exprs) <= 1:
        return f"{e(0)}.opaque(salt={salt})"
    out = e(0)
    for i in range(1, len(exprs)):
        out = f"{out}.opaque({exprs[i]}, salt={salt})"
    return out


def _mark_pending_lines(insn: Instruction) -> List[str]:
    """``warp.mark_pending`` unrolled over literal destination indices."""
    lines = []
    if insn.dst_idx:
        lines.append("pr2 = warp.pending_regs")
        for i in insn.dst_idx:
            lines.append(f"pr2[{i}] = pr2.get({i}, 0) + 1")
    if insn.pred_dst_idx:
        lines.append("pp2 = warp.pending_preds")
        for i in insn.pred_dst_idx:
            lines.append(f"pp2[{i}] = pp2.get({i}, 0) + 1")
    lines.append("warp.inflight += 1")
    return lines


def _park_lines(bin_expr: str, demotes: bool, demote_bin: bool,
                indent: str) -> List[str]:
    """An inline ``_maybe_park`` for a failure whose bin is known: park the
    warp now instead of letting the cycle loop re-derive the bin through
    ``_classify``.  A non-ready warp is a mid-scan re-yield (or the dual
    -issue second attempt of a warp that just parked) — skip, exactly like
    ``_maybe_park``'s early out.  ``demote_bin`` mirrors the _DEMOTE_BINS
    check: a demoting scheduler's still-eligible warp must stay ready."""
    guard = "warp.ready"
    if demotes and demote_bin:
        guard += " and not shard.scheduler.eligible(warp)"
    return [f"{indent}if {guard}:", f"{indent}    shard._park(warp, {bin_expr})"]


def _scoreboard_lines(insn: Instruction, demotes: bool) -> List[str]:
    """Scoreboard + blocked-on-memory check over literal indices; a failed
    check parks the warp under its (statically known) bin."""
    conds = []
    pre = []
    reg_idx = tuple(dict.fromkeys(insn.reg_idx))
    pred_idx = tuple(dict.fromkeys(insn.pred_idx))
    if reg_idx:
        pre.append("pr = warp.pending_regs")
        test = " or ".join(f"{i} in pr" for i in reg_idx)
        conds.append(f"(pr and ({test}))")
    if pred_idx:
        pre.append("pp = warp.pending_preds")
        test = " or ".join(f"{i} in pp" for i in pred_idx)
        conds.append(f"(pp and ({test}))")
    if not conds:
        return []
    lines = pre + [f"if {' or '.join(conds)}:"]
    src_idx = tuple(dict.fromkeys(insn.src_idx))
    if src_idx:
        test = " or ".join(f"{i} in pl" for i in src_idx)
        lines.append("    pl = warp.pending_loads")
        lines.append(f"    if pl and ({test}):")
        lines.append("        shard.scheduler.notify_long_stall(warp)")
        lines.extend(_park_lines('"mem_pending"', demotes, True, "        "))
        lines.append("    else:")
        lines.extend(_park_lines('"scoreboard"', demotes, False, "        "))
    else:
        lines.extend(_park_lines('"scoreboard"', demotes, False, "    "))
    lines.append("    return PARK")
    return lines


def _inc(name: str, amount: str = "1", *, inline_counts: bool) -> str:
    """One counter bump: a direct defaultdict add when the SM's counters
    are the stock flat :class:`Counters` (``cnt`` bound in the prologue),
    else the generic ``inc`` method call."""
    if inline_counts:
        return f'cnt["{name}"] += {amount}'
    if amount == "1":
        return f'inc("{name}")'
    return f'inc("{name}", {amount})'


def _on_issue_lines(flavor: str, pc: int, insn: Instruction,
                    rfh_assignment=None, *, inline_counts: bool) -> List[str]:
    """``storage.on_issue`` fused per backend flavor."""
    if flavor == "baseline":
        n = len(insn.reg_srcs)
        if not n:
            return []
        return [_inc("rf_read", str(n), inline_counts=inline_counts)]
    if flavor == "rfh":
        counts: Dict[str, int] = {}
        read_level = rfh_assignment.read_level
        for r in insn.reg_srcs:
            level = read_level.get((pc, r.index), MRF)
            name = "rf_read" if level == MRF else f"rfh_{level}_read"
            counts[name] = counts.get(name, 0) + 1
        return [
            _inc(name, str(n), inline_counts=inline_counts)
            for name, n in counts.items()
        ]
    # regless / rfv: the hooks mutate OSU / rename state — keep the real
    # bound call (still saves the interpreter's dispatch around it).
    return [f"on_issue(warp, {pc}, I{pc})"]


class _Unsupported(Exception):
    """The generator cannot specialize this pc; use a generic step."""


def _step_source(pc: int, insn: Instruction, flavor: str, *,
                 line_bytes: int, branch_target: Optional[int],
                 reconv: Optional[int], rid: int, hit_idx: int,
                 region_start: bool, rfh_assignment=None,
                 demotes: bool = False, inline_counts: bool = False,
                 storage=None, batch: bool = False,
                 cohort: bool = False) -> str:
    """Source of one ``_step_{pc}(shard, warp, now, top)`` function.

    With ``batch`` the step participates in cohort batching: LDG/STG
    consume matrix-materialized lane addresses when the account pass
    staged them.  With ``cohort`` (implies ``batch``) the *cohort
    variant* ``_cstep_{pc}`` is generated instead: it takes the issuing
    CTA of the cycle's same-pc run as an extra argument and shares the
    previous member's operand-storage admission verdict when the CTA
    matches.  Everything else (write-back pushes included) is the plain
    step body — same pc means same latency, so cohort members' wheel
    pushes land in the same bucket in scalar FIFO order already."""
    body: List[str] = []
    emit = body.append

    def inc(name: str, amount: str = "1") -> str:
        return _inc(name, amount, inline_counts=inline_counts)

    # 1. scoreboard (interpreter: warp.scoreboard_ready + notify_long_stall)
    body.extend(_scoreboard_lines(insn, demotes))

    # 2. operand-storage gate (interpreter: storage.can_issue); a gate
    # failure parks under the stall_reason bin, computed inline.
    if flavor in ("baseline", "rfh"):
        if cohort:
            # Cohort member: the previous member's residency verdict for
            # the same CTA is provably still valid (retirement requires
            # every warp of the CTA exited, and that member is live).
            emit("if warp.cta_id == b_cta:")
            emit("    BST.gate_shared += 1")
            emit("elif warp.cta_id not in shard._jit_resident:")
        else:
            emit("if warp.cta_id not in shard._jit_resident:")
        emit("    shard.scheduler.notify_long_stall(warp)")
        body.extend(_park_lines('"occupancy"', demotes, True, "    "))
        emit("    return PARK")
    elif flavor == "regless":
        if rid < 0:
            raise _Unsupported("pc outside any region")
        emit("ctx = shard._jit_cm_ctx[warp.wid]")
        emit(f"if ctx.state is not ACTIVE or ctx.region is not REG{rid}:")
        emit("    shard.scheduler.notify_long_stall(warp)")
        # stall_reason, inline: PRELOADING splits on the OSU's L1 port,
        # everything else (INACTIVE/DRAINING/FINISHED, or ACTIVE on a
        # different region) waits for (re)admission.
        park = _park_lines("r", demotes, True, "        ")
        emit("    if warp.ready:")
        emit("        if ctx.state is PRELOADING:")
        emit('            r = ("osu_port" if shard._jit_osu_blocked(warp.wid)'
             ' else "cm_preloading")')
        emit("        else:")
        emit('            r = "cm_inactive"')
        body.extend(park)
        emit("    return PARK")
    elif flavor == "rfv":
        # can_issue is impure on failure (valve/counters): real call.  RFV
        # is non-parkable, so the cycle loop's park pass would be a pure
        # no-op — KEEP skips it.
        emit(f"if not can_issue(warp, {pc}, I{pc}):")
        emit("    shard.scheduler.notify_long_stall(warp)")
        emit("    return KEEP")
    else:
        raise _Unsupported(f"flavor {flavor}")

    # 3. per-cycle LDST slot
    if insn.is_mem:
        emit("if not shard._jit_take_mem_slot():")
        emit("    return KEEP")

    # 4. issue body (interpreter: Shard.issue)
    if inline_counts:
        emit("cnt = shard._jit_counts")
    else:
        emit("inc = shard._counters_inc")
    emit(inc("insn_issued"))
    emit("warp.issued += 1")
    if flavor == "regless" and region_start:
        # consume_metadata is nonzero only at the active region's first pc;
        # the gate above pinned that region, so non-start pcs skip the call.
        emit(f"meta = shard._jit_metadata(warp, {pc})")
        emit("if meta:")
        emit("    " + inc("metadata_issue", "meta"))

    info = insn.info
    guard = insn.guard
    needs_guard = guard is not None and (
        info.is_branch
        or insn.opcode is Opcode.LDG
        or (not insn.is_mem and not info.is_exit and not info.is_barrier
            and insn.opcode is not Opcode.SETP and insn.reg_dsts)
    )
    if needs_guard:
        emit(f"gm = warp.preds.get({guard.pred.index}, 0)")
        if guard.negate:
            emit(f"gm = ~gm & {FULL_MASK}")

    on_issue = _on_issue_lines(flavor, pc, insn, rfh_assignment,
                               inline_counts=inline_counts)
    fused_tail = [f"shard._jit_hits[{hit_idx}] += 1", "return OK"]

    # 5. control resolution + class body
    if info.is_branch:
        if branch_target is None:
            raise _Unsupported("branch without target pc")
        if guard is None:
            emit(f"top.pc = {branch_target}")
        else:
            emit("am = top.mask")
            emit("taken = am & gm")
            emit(f"nottaken = am & ~gm & {FULL_MASK}")
            emit("if nottaken == 0:")
            emit(f"    top.pc = {branch_target}")
            emit("elif taken == 0:")
            emit(f"    top.pc = {pc + 1}")
            emit("else:")
            emit("    " + inc("divergent_branch"))
            emit(f"    warp.diverge({reconv}, {branch_target}, taken,"
                 f" {pc + 1}, nottaken)")
        body.extend(on_issue)
        body.extend(fused_tail)
        return _render(pc, body)

    if info.is_exit:
        emit(f"top.pc = {pc + 1}")
        emit("warp.exited = True")
        body.extend(on_issue)
        emit("shard.storage.on_warp_exit(warp)")
        emit("shard.sm.notify_warp_done(warp)")
        body.extend(fused_tail)
        return _render(pc, body)

    if info.is_barrier:
        emit(f"top.pc = {pc + 1}")
        body.extend(on_issue)
        emit("shard.sm.barrier_arrive(warp)")
        emit("if warp.at_barrier:")
        emit("    shard.scheduler.notify_long_stall(warp)")
        body.extend(fused_tail)
        return _render(pc, body)

    emit(f"top.pc = {pc + 1}")
    body.extend(on_issue)

    lat = insn.latency
    op = insn.opcode
    wb_src = _wb_source(pc, insn, flavor, storage, rfh_assignment,
                        inline_counts=inline_counts)
    wb = f"AFTER({lat}, _WBC(_wb_{pc}, shard, warp))"
    wb_alu = [wb]

    def _finish() -> str:
        src = _render(pc, body, cohort=cohort)
        if not cohort and any("_WBC(" in line for line in body):
            src += "\n" + wb_src
        return src

    if insn.is_mem:
        if op is Opcode.LDS:
            if insn.reg_dsts:
                src = (
                    _operand_expr(pc, 0, insn.srcs[0]) if insn.srcs else None
                )
                if src is None:
                    raise _Unsupported("LDS operand")
                if "rg.get(" in src:
                    emit("rg = warp.regs")
                emit(f"v = {src}.opaque(salt=0x60)")
                # interpreter write_reg defaults full=True even when guarded
                emit(f"warp.regs[{insn.dst_idx[0]}] = v")
                body.extend(_mark_pending_lines(insn))
                emit(wb)
            emit(inc("shared_access"))
        elif op is Opcode.STS:
            emit(inc("shared_access"))
        elif op is Opcode.STG or op is Opcode.LDG:
            src = _operand_expr(pc, 0, insn.srcs[0]) if insn.srcs else None
            if src is None:
                raise _Unsupported("memory address operand")
            if "rg.get(" in src:
                emit("rg = warp.regs")
            emit(f"addr = {src}")
            if batch:
                # The account pass may have matrix-materialized this
                # warp's lane addresses with its cohort (bit-identical
                # rows); consume the staged entry, else compute scalar.
                # The truth test keeps the common empty-staging case to
                # one dict check instead of a tuple alloc + pop miss.
                emit("lines = BLINES.pop((warp.wid,"
                     f" {pc}), None) if BLINES else None")
                emit("if lines is None:")
                emit(f"    lines = addr.line_addresses({line_bytes},"
                     f" shard._jit_divlines)")
            else:
                emit(f"lines = addr.line_addresses({line_bytes},"
                     f" shard._jit_divlines)")
            if op is Opcode.STG:
                emit("req = shard._jit_mem_request")
                emit("smid = shard._jit_sm_id")
                emit("for line in lines:")
                emit('    req(smid, line, True, None, kind="data")')
                emit(inc("gmem_store_lines", "len(lines)"))
            else:  # LDG
                if not insn.reg_dsts:
                    raise _Unsupported("LDG without destination")
                emit(inc("gmem_load_lines", "len(lines)"))
                emit(f"v = shard._jit_load_value(warp.wid, {pc},"
                     f" {insn.tag!r})")
                d = insn.dst_idx[0]
                if guard is None:
                    emit(f"warp.regs[{d}] = v")
                else:
                    emit(f"warp.write_reg(RD{pc}, v,"
                         f" (top.mask & gm) == top.mask)")
                body.extend(_mark_pending_lines(insn))
                emit(f"warp.pending_loads.add({d})")
                emit(f"cont = _LC(shard, warp, {pc}, I{pc}, len(lines))")
                emit("req = shard._jit_mem_request")
                emit("smid = shard._jit_sm_id")
                emit("for line in lines:")
                emit('    req(smid, line, False, cont, kind="data")')
        else:  # pragma: no cover - is_mem covers exactly the four above
            raise _Unsupported(f"memory opcode {op}")
        body.extend(fused_tail)
        return _finish()

    if op is Opcode.SETP:
        if not insn.pred_dsts:
            raise _Unsupported("SETP without predicate destination")
        p = insn.pred_dst_idx[0]
        emit(f"m = shard._jit_pred_mask(warp.wid, {pc}, {insn.tag!r})")
        emit(f"warp.preds[{p}] = m & {FULL_MASK}")
        body.extend(_mark_pending_lines(insn))
        body.extend(wb_alu)
        body.extend(fused_tail)
        return _finish()

    if insn.reg_dsts:
        expr = _value_expr(pc, insn)
        if expr is None:
            raise _Unsupported("operand kind")
        if "rg.get(" in expr:
            emit("rg = warp.regs")
        emit(f"v = {expr}")
        if guard is None:
            # full=True: active == top.mask always holds unguarded.
            emit(f"warp.regs[{insn.dst_idx[0]}] = v")
        else:
            emit(f"warp.write_reg(RD{pc}, v, (top.mask & gm) == top.mask)")
        body.extend(_mark_pending_lines(insn))
        body.extend(wb_alu)

    body.extend(fused_tail)
    return _finish()


class _JITWriteback:
    """Write-back continuation for a generated per-pc handler (replaces
    ``_Writeback`` + the interpreter ``_writeback`` dispatch)."""

    __slots__ = ("fn", "shard", "warp")

    def __init__(self, fn, shard, warp):
        self.fn = fn
        self.shard = shard
        self.warp = warp

    def __call__(self) -> None:
        self.fn(self.shard, self.warp)


def _wb_source(pc: int, insn: Instruction, flavor: str, storage,
               rfh_assignment, *, inline_counts: bool) -> str:
    """A per-pc ``Shard._writeback`` equivalent: scoreboard clears unrolled
    over literal indices, ``storage.on_writeback`` inlined per flavor (RFH
    write-level counters and RFV death lists are static per pc)."""
    body: List[str] = []
    e = body.append
    if insn.dst_idx:
        e("pending_regs = warp.pending_regs")
        for i in insn.dst_idx:
            e(f"n = pending_regs.get({i}, 0)")
            e("if n <= 1:")
            e(f"    pending_regs.pop({i}, None)")
            e("else:")
            e(f"    pending_regs[{i}] = n - 1")
    if insn.pred_dst_idx:
        e("pending_preds = warp.pending_preds")
        for i in insn.pred_dst_idx:
            e(f"n = pending_preds.get({i}, 0)")
            e("if n <= 1:")
            e(f"    pending_preds.pop({i}, None)")
            e("else:")
            e(f"    pending_preds[{i}] = n - 1")
    e("warp.inflight -= 1")
    # No is_global_load handling: LDG write-backs ride _LoadContinuation,
    # never this path.  Working-set tracking refuses arming entirely.
    def inc(name: str, amount: str = "1") -> str:
        return _inc(name, amount, inline_counts=inline_counts)

    counter_prologue = (
        "cnt = shard._jit_counts" if inline_counts
        else "inc = shard._counters_inc"
    )
    if flavor == "baseline":
        if insn.reg_dsts:
            e(counter_prologue)
            e(inc("rf_write", str(len(insn.reg_dsts))))
    elif flavor == "rfh":
        if insn.reg_dsts:
            e(counter_prologue)
            write_level = rfh_assignment.write_level
            for r in insn.reg_dsts:
                key = (pc, r.index)
                level = write_level.get(key, MRF)
                e(inc("rf_write" if level == MRF else _C_WRITE[level]))
                if key in rfh_assignment.writethrough:
                    e(inc("rf_write"))
    elif flavor == "rfv":
        e("wid = warp.wid")
        if insn.reg_dsts:
            e(counter_prologue)
            for _ in insn.reg_dsts:
                e(inc("rfv_write"))
        deaths = storage._deaths.get(pc, ())
        if deaths:
            # _mapped is rebound on warp exit: reach it through the
            # storage instance, not a cached set object.
            e("mapped = RFV._mapped")
            for r in deaths:
                e(f"mapped.discard((wid, {r.index}))")
        e("if RFV._emergency and RFV.allocated <= RFV.capacity:")
        e("    RFV._emergency = False")
        e("nv = NEED_VER")
        e("nv[wid] = nv.get(wid, 0) + 1")
    elif flavor == "regless":
        e("wid = warp.wid")
        for i in insn.dst_idx:
            e(f"OSU_CW(wid, {i})")
        for i in storage._pc_erase_w[pc]:
            e(f"OSU_ERASE(wid, {i})")
        for i in storage._pc_evict_w[pc]:
            e(f"OSU_EVICT(wid, {i})")
        e("CM_ON_WB(warp, WHEEL.now)")
    e("if not warp.ready:")
    e("    shard.reevaluate(warp)")
    lines = [f"def _wb_{pc}(shard, warp):"]
    lines.extend(f"    {line}" for line in body)
    return "\n".join(lines) + "\n"


def _render(pc: int, body: List[str], *, cohort: bool = False) -> str:
    if cohort:
        lines = [f"def _cstep_{pc}(shard, warp, now, top, b_cta):"]
        lines.extend(f"    {line}" for line in body)
        return "\n".join(lines) + "\n"
    lines = [f"def _step_{pc}(shard, warp, now, top):"]
    lines.extend(f"    {line}" for line in body)
    return "\n".join(lines) + "\n"


def _generic_source(pc: int) -> str:
    """Interpreter deferral for a pc the generator refused: the class-level
    ``_try_issue`` redoes the quick checks (cheap, already passed) and runs
    the full interpreter path — bit-identical by construction."""
    return (
        f"def _step_{pc}(shard, warp, now, top):\n"
        f"    r = _TRY_ISSUE(shard, warp, now)\n"
        f"    if r is OK:\n"
        f"        shard._jit_falls[0] += 1\n"
        f"    return r\n"
    )


def _classify_source(flavor: str, demotes: bool, program_len: int) -> str:
    """A flavor-specialized ``Shard._classify``: same ladder, same priority
    order, with the virtual ``storage.stall_reason`` call inlined (RFV
    keeps the real call — its pressure preview carries a per-warp cache)
    and ``sm.mem_slot_busy`` reduced to a slot-cycle compare."""
    L: List[str] = ["def _classify(warp, now):"]
    e = L.append
    e("    if warp.exited:")
    e('        return "exited"')
    e("    if warp.at_barrier:")
    e('        return "barrier"')
    e("    if now < warp.stall_until:")
    e('        return "pipeline"')
    e("    stack = warp.stack")
    e("    i = len(stack) - 1")
    e("    entry = stack[i]")
    e("    while i > 0 and entry.pc == entry.reconv_pc:")
    e("        i -= 1")
    e("        entry = stack[i]")
    e("    pc = entry.pc")
    e(f"    if pc >= {program_len}:")
    e('        return "exited"')
    e("    insn = PROGRAM[pc]")
    e("    if not warp.scoreboard_ready(insn):")
    e("        pl = warp.pending_loads")
    e("        if pl:")
    e("            for i in insn.src_idx:")
    e("                if i in pl:")
    e('                    return "mem_pending"')
    e('        return "scoreboard"')
    if flavor in ("baseline", "rfh"):
        e("    if warp.cta_id not in RESIDENT:")
        e('        return "occupancy"')
    elif flavor == "regless":
        e("    ctx = CM_CTX[warp.wid]")
        e("    st = ctx.state")
        e("    if st is ACTIVE:")
        e("        region = ctx.region")
        e("        if region is None or not"
          " (region.start_pc <= pc < region.end_pc):")
        e('            return "cm_inactive"')
        e("    elif st is PRELOADING:")
        e("        if OSU_BLOCKED(warp.wid):")
        e('            return "osu_port"')
        e('        return "cm_preloading"')
        e("    else:")
        e('        return "cm_inactive"')
    else:  # rfv
        e("    reason = STALL_REASON(warp, pc, insn)")
        e("    if reason is not None:")
        e("        return reason")
    e("    if insn.is_mem and SM_OBJ._mem_slot_cycle == now:")
    e('        return "mem_slot"')
    if demotes:
        e("    if not ELIGIBLE(warp):")
        e('        return "demoted"')
    e('    return "issue_width"')
    return "\n".join(L) + "\n"


def _classify_b_source(flavor: str, program_len: int) -> str:
    """The cohort-cache classifier: ``_classify``'s exact ladder returning
    ``(bin, pc)`` tuples — the covered map and the cohort metrics need the
    effective pc, which the ladder computes anyway — with the memory-class
    tail collapsed to the :data:`repro.sim.warpbatch.MEMSENS` sentinel (a
    MEMSENS warp's bin flips between ``mem_slot`` and ``issue_width`` with
    the SM's LDST slot; the account pass parity-resolves the whole cohort
    at commit time).  Only generated for non-demoting schedulers, so the
    "demoted" arm vanishes; rfv never batches (impure admission)."""
    L: List[str] = ["def _classify_b(warp, now):"]
    e = L.append
    e("    if warp.exited:")
    e('        return ("exited", -1)')
    e("    if warp.at_barrier:")
    e('        return ("barrier", -1)')
    e("    if now < warp.stall_until:")
    e('        return ("pipeline", -1)')
    e("    stack = warp.stack")
    e("    i = len(stack) - 1")
    e("    entry = stack[i]")
    e("    while i > 0 and entry.pc == entry.reconv_pc:")
    e("        i -= 1")
    e("        entry = stack[i]")
    e("    pc = entry.pc")
    e(f"    if pc >= {program_len}:")
    e('        return ("exited", -1)')
    e("    insn = PROGRAM[pc]")
    e("    if not warp.scoreboard_ready(insn):")
    e("        pl = warp.pending_loads")
    e("        if pl:")
    e("            for i in insn.src_idx:")
    e("                if i in pl:")
    e('                    return ("mem_pending", pc)')
    e('        return ("scoreboard", pc)')
    if flavor in ("baseline", "rfh"):
        e("    if warp.cta_id not in RESIDENT:")
        e('        return ("occupancy", pc)')
    elif flavor == "regless":
        e("    ctx = CM_CTX[warp.wid]")
        e("    st = ctx.state")
        e("    if st is ACTIVE:")
        e("        region = ctx.region")
        e("        if region is None or not"
          " (region.start_pc <= pc < region.end_pc):")
        e('            return ("cm_inactive", pc)')
        e("    elif st is PRELOADING:")
        e("        if OSU_BLOCKED(warp.wid):")
        e('            return ("osu_port", pc)')
        e('        return ("cm_preloading", pc)')
        e("    else:")
        e('        return ("cm_inactive", pc)')
    e("    if insn.is_mem:")
    e("        return (MEMSENS, pc)")
    e('    return ("issue_width", pc)')
    return "\n".join(L) + "\n"


def _reevaluate_source(flavor: str, demotes: bool, program_len: int) -> str:
    """A flavor-specialized ``Shard.reevaluate``: same wake re-check, with
    ``storage.parkable``/``storage.stall_reason`` resolved statically and
    the bin re-derivation going through the specialized ``_classify``."""
    L: List[str] = ["def _reevaluate(shard, warp):"]
    e = L.append
    e("    if warp.ready:")
    e("        return")
    e("    now = WHEEL.now")
    e("    if not warp.exited and not warp.at_barrier"
      " and now >= warp.stall_until:")
    e("        stack = warp.stack")
    e("        i = len(stack) - 1")
    e("        entry = stack[i]")
    e("        while i > 0 and entry.pc == entry.reconv_pc:")
    e("            i -= 1")
    e("            entry = stack[i]")
    e("        pc = entry.pc")
    e(f"        if pc >= {program_len}:")
    e("            shard._make_ready(warp)")
    e("            return")
    e("        if warp.scoreboard_ready(PROGRAM[pc]):")
    if flavor in ("baseline", "rfh"):
        e("            if warp.cta_id in RESIDENT:")
        e("                shard._make_ready(warp)")
        e("                return")
    elif flavor == "regless":
        e("            ctx = CM_CTX[warp.wid]")
        e("            if ctx.state is ACTIVE:")
        e("                region = ctx.region")
        e("                if region is not None and"
          " region.start_pc <= pc < region.end_pc:")
        e("                    shard._make_ready(warp)")
        e("                    return")
    else:  # rfv: non-parkable — any scoreboard-clear warp re-readies
        e("            shard._make_ready(warp)")
        e("            return")
    e("    bin_ = _classify(warp, now)")
    if demotes:
        e("    if bin_ in DEMOTE_BINS and ELIGIBLE(warp):")
        e("        shard._make_ready(warp)")
        e("        return")
    e("    shard._repark(warp, bin_)")
    return "\n".join(L) + "\n"


def _account_source(flavor: str, demotes: bool) -> str:
    """A flavor-specialized ``Shard._account_stalls``: the dynamic-bin
    refresh emitted only for RegLess (the one flavor with dynamic bins),
    ``storage.parkable``/``scheduler.demotes`` baked, classify direct."""
    parkable = flavor != "rfv"
    L: List[str] = ["def _account_stalls(shard, now, issued_warps):"]
    e = L.append
    if flavor == "regless":
        e("    if DYNAMIC:")
        e("        bins_live = PARKED")
        e("        for warp in tuple(DYNAMIC):")
        e("            pc = warp.park_pc")
        e("            reason = STALL_REASON_R(warp, pc, PROGRAM[pc])")
        e("            if reason is None:")
        e("                shard.reevaluate(warp)")
        e("            elif reason != warp.park_bin:")
        e("                n = bins_live[warp.park_bin] - 1")
        e("                if n:")
        e("                    bins_live[warp.park_bin] = n")
        e("                else:")
        e("                    del bins_live[warp.park_bin]")
        e("                bins_live[reason] = bins_live.get(reason, 0) + 1")
        e("                warp.park_bin = reason")
    e("    bins = dict(PARKED)")
    e("    to_park = None")
    e("    for warp in READY:")
    e("        if warp in issued_warps:")
    e("            continue")
    e("        reason = _classify(warp, now)")
    e("        bins[reason] = bins.get(reason, 0) + 1")
    if parkable and not demotes:
        # Specialized classify never yields "demoted" for a non-demoting
        # scheduler, so the interpreter's elif arm is unreachable here.
        e("        if reason not in ACCT_PARK:")
        e("            continue")
    elif parkable:
        e("        if reason in ACCT_PARK:")
        e("            if reason in DEMOTE_BINS and ELIGIBLE(warp):")
        e("                continue")
        e("        elif reason == 'demoted':")
        e("            stack = warp.stack")
        e("            i = len(stack) - 1")
        e("            entry = stack[i]")
        e("            while i > 0 and entry.pc == entry.reconv_pc:")
        e("                i -= 1")
        e("                entry = stack[i]")
        e("            if PROGRAM[entry.pc].is_mem:")
        e("                continue")
        e("        else:")
        e("            continue")
    else:  # rfv: nothing storage-binned parks, "demoted" never parks
        e("        if reason not in ACCT_PARK or reason in STORAGE_BINS:")
        e("            continue")
        if demotes:
            e("        if reason in DEMOTE_BINS and ELIGIBLE(warp):")
            e("            continue")
    e("        if to_park is None:")
    e("            to_park = [(warp, reason)]")
    e("        else:")
    e("            to_park.append((warp, reason))")
    e("    if to_park is not None:")
    e("        for warp, reason in to_park:")
    e("            shard._park(warp, reason)")
    e("    for warp in issued_warps:")
    e("        if not warp.ready:")
    e("            n = bins[warp.park_bin] - 1")
    e("            if n:")
    e("                bins[warp.park_bin] = n")
    e("            else:")
    e("                del bins[warp.park_bin]")
    e("    if issued_warps:")
    e("        bins[ISSUED] = len(issued_warps)")
    e("    COMMIT(bins)")
    e("    shard._idle_committed = False")
    return "\n".join(L) + "\n"


def _cycle_source(two_level: bool, has_stalls: bool,
                  issue_width: int, program_len: int,
                  storage_pump: bool, batch: bool = False) -> str:
    """A specialized ``Shard.cycle``: the interpreter loop with the JIT
    driver's prologue inlined per candidate (quick-fail parks use their
    statically-known bins), scheduler begin_cycle/quiescent resolved
    statically (GTO/LRR: no-ops; two-level: the dirty purge), and the
    storage pump elided for flavors whose ``has_work`` is constant False."""
    L: List[str] = ["def _cycle(shard):"]
    e = L.append
    e("    now = WHEEL.now")
    if storage_pump:
        e("    if HAS_WORK(now):")
        e("        STORAGE_CYCLE()")
    e("    heap = HEAP")
    quiescent = " and not SCHED._dirty" if two_level else ""
    e("    if not READY and not DYNAMIC"
      f" and (not heap or heap[0][0] > now){quiescent}:")
    if has_stalls:
        e("        if shard._idle_committed:")
        e("            STALLS.replay(1)")
        e("        else:")
        e("            STALLS.commit(dict(PARKED))")
        e("            shard._idle_committed = True")
    e("        return 0")
    if two_level:
        e("    SCHED._now = now")
        e("    if SCHED._dirty:")
        e("        SCHED._dirty = False")
        e("        SCHED._refill()")
    e("    if heap:")
    e("        wake_at = WAKE_AT")
    e("        while heap and heap[0][0] <= now:")
    e("            t, wid, warp = _heappop(heap)")
    e("            if wake_at.get(wid) == t:")
    e("                del wake_at[wid]")
    e("                REEVALUATE(warp)")
    e("    issued = 0")
    e("    issued_warps = ISSUED_W")
    e("    issued_warps.clear()")
    e("    if READY:")
    e("        scan = shard._scan = BEGIN_SCAN(now)")
    e("        next_c = scan.next_candidate")
    if batch:
        # b_pc/b_cta track the last successful issue through a
        # cohort-capable step this cycle; a same-pc successor candidate
        # dispatches the cohort variant, which shares the issuer's
        # storage-gate verdict when the CTA matches.  Cycle-locals, not
        # shard attributes: the common non-cohort issue pays one tuple
        # index and (at most) two local stores.
        e("        b_pc = -1")
        e("        b_cta = -1")
    e(f"        budget = {issue_width}")
    e("        while budget > 0:")
    e("            warp = next_c()")
    e("            if warp is None:")
    e("                break")
    # Quick-fail prologue: each branch's bin is statically known, so park
    # directly (the same park _maybe_park's classify would produce; the
    # ready guard covers scan re-yields of already-parked warps).
    e("            if warp.exited:")
    e("                if warp.ready:")
    e("                    shard._park(warp, 'exited')")
    e("                continue")
    e("            if warp.at_barrier:")
    e("                if warp.ready:")
    e("                    shard._park(warp, 'barrier')")
    e("                continue")
    e("            if now < warp.stall_until:")
    e("                if warp.ready:")
    e("                    shard._park(warp, 'pipeline')")
    e("                continue")
    e("            stack = warp.stack")
    e("            top = stack[-1]")
    e("            while len(stack) > 1 and top.pc == top.reconv_pc:")
    e("                stack.pop()")
    e("                top = stack[-1]")
    e("            pc = top.pc")
    e(f"            if pc >= {program_len}:")
    e("                warp.exited = True")
    e("                ON_WARP_EXIT(warp)")
    e("                NOTIFY_DONE(warp)")
    e("                if warp.ready:")
    e("                    shard._park(warp, 'exited')")
    e("                continue")
    if batch:
        # The cohort-capability test lives on the (rare) same-pc
        # dispatch, keeping the common issue path to two local stores.
        e("            if pc == b_pc:")
        e("                f = _CSTEPS[pc]")
        e("                if f is not None:")
        e("                    code = f(shard, warp, now, top, b_cta)")
        e("                else:")
        e("                    code = _STEPS[pc](shard, warp, now, top)")
        e("            else:")
        e("                code = _STEPS[pc](shard, warp, now, top)")
    else:
        e("            code = _STEPS[pc](shard, warp, now, top)")
    e("            if code is OK:")
    e("                budget -= 1")
    e("                issued += 1")
    e("                issued_warps.append(warp)")
    e("                NOTIFY_ISSUE(warp, now)")
    if batch:
        e("                b_pc = pc")
        e("                b_cta = warp.cta_id")
    e("                if budget > 0 and not (warp.exited or warp.at_barrier"
      " or now < warp.stall_until):")
    e("                    stack = warp.stack")
    e("                    top = stack[-1]")
    e("                    while len(stack) > 1 and top.pc == top.reconv_pc:")
    e("                        stack.pop()")
    e("                        top = stack[-1]")
    e("                    pc = top.pc")
    e(f"                    if pc >= {program_len}:")
    e("                        warp.exited = True")
    e("                        ON_WARP_EXIT(warp)")
    e("                        NOTIFY_DONE(warp)")
    e("                    elif _STEPS[pc](shard, warp, now, top) is OK:")
    e("                        budget -= 1")
    e("                        issued += 1")
    if batch:
        # The dual-issued instruction advanced the pc (and may have
        # exited the warp); the armed verdict no longer describes it.
        e("                        b_pc = -1")
    e("                if warp.exited or warp.at_barrier:")
    e("                    shard._park(warp, _classify(warp, now))")
    e("            elif code is PARK:")
    e("                shard._maybe_park(warp, now)")
    e("        shard._scan = None")
    if has_stalls:
        e("    shard._account_stalls(now, issued_warps)")
    e("    return issued")
    return "\n".join(L) + "\n"


def _program_source(shard: Shard, flavor: str,
                    batch: bool = False) -> Tuple[str, int, int, set]:
    """Full generated module source + (compiled, generic) step counts +
    the set of compiled LDG/STG pcs with a Reg address operand (the
    matrix lane-materialization candidates when ``batch``)."""
    sm = shard.sm
    compiled = sm.compiled
    program = sm.program
    rfh_assignment = (
        shard.storage.assignment if flavor == "rfh" else None
    )
    demotes = shard.scheduler.demotes
    inline_counts = type(sm.counters) is Counters
    n_regions = len(compiled.regions)
    region_banner = {
        region.pcs().start: f"# region {region.rid}: {region.block} "
        f"pcs [{region.start_pc}, {region.end_pc})"
        for region in compiled.regions
    }
    chunks: List[str] = []
    n_ok = n_generic = 0
    mem_pcs: set = set()
    has_cstep = [False] * len(program)
    for pc, insn in enumerate(program):
        rid = compiled.region_id_of_pc(pc)
        hit_idx = rid if rid >= 0 else n_regions
        banner = region_banner.get(pc)
        if banner is not None:
            chunks.append(banner + "\n")
        kw = dict(
            line_bytes=sm.config.line_bytes,
            branch_target=(
                sm.block_start(insn.target)
                if insn.info.is_branch and insn.target is not None
                else None
            ),
            reconv=sm.reconv_pc(pc) if insn.info.is_branch else None,
            rid=rid,
            hit_idx=hit_idx,
            region_start=rid >= 0 and compiled.is_region_start(pc),
            rfh_assignment=rfh_assignment,
            demotes=demotes,
            inline_counts=inline_counts,
            storage=shard.storage,
            batch=batch,
        )
        try:
            chunks.append(_step_source(pc, insn, flavor, **kw))
            n_ok += 1
        except _Unsupported:
            chunks.append(_generic_source(pc))
            n_generic += 1
            continue
        if not batch:
            continue
        op = insn.opcode
        info = insn.info
        if (op is Opcode.LDG or op is Opcode.STG) and insn.srcs \
                and type(insn.srcs[0]) is Reg:
            mem_pcs.add(pc)
        # Cohort variants: non-mem, non-control ALU/SETP steps of the
        # flavors whose storage gate has a shareable verdict (the plain
        # step compiled, so the cohort body compiles from the same
        # expressions).  RegLess gains nothing from a cohort variant —
        # its gate is a per-warp CM context test — so it skips the
        # whole dispatch (empty _CSTEPS elides it from the loop).
        if (flavor in ("baseline", "rfh")
                and not insn.is_mem and not info.is_branch
                and not info.is_exit and not info.is_barrier
                and ((op is Opcode.SETP and insn.pred_dsts)
                     or (op is not Opcode.SETP and insn.reg_dsts))):
            chunks.append(_step_source(pc, insn, flavor, cohort=True, **kw))
            has_cstep[pc] = True
    chunks.append(_classify_source(flavor, demotes, len(program)))
    if batch:
        chunks.append(_classify_b_source(flavor, len(program)))
    if _full_loop(shard):
        chunks.append(_reevaluate_source(flavor, demotes, len(program)))
        if shard.stalls is not None:
            chunks.append(_account_source(flavor, demotes))
        chunks.append(_cycle_source(
            two_level=type(shard.scheduler) is TwoLevelScheduler,
            has_stalls=shard.stalls is not None,
            issue_width=shard._issue_width,
            program_len=len(program),
            # Storages inheriting the base constant-False has_work never
            # pump; their per-cycle check is dead code.
            storage_pump=(
                type(shard.storage).has_work is not OperandStorage.has_work
            ),
            # The cohort dispatch only earns its per-candidate compare
            # when some pc actually has a cohort variant.
            batch=batch and any(has_cstep),
        ))
    names = ", ".join(f"_step_{pc}" for pc in range(len(program)))
    chunks.append(f"_STEPS = ({names}{',' if len(program) == 1 else ''})\n")
    if batch:
        cnames = ", ".join(
            f"_cstep_{pc}" if has_cstep[pc] else "None"
            for pc in range(len(program))
        )
        chunks.append(
            f"_CSTEPS = ({cnames}{',' if len(program) == 1 else ''})\n"
        )
    return "\n".join(chunks), n_ok, n_generic, mem_pcs


def _full_loop(shard: Shard) -> bool:
    """Whether the whole cycle loop (not just the steps) may be generated:
    requires a stock scheduler so begin_cycle/quiescent semantics can be
    resolved statically."""
    return type(shard.scheduler) in (
        GTOScheduler, LRRScheduler, TwoLevelScheduler
    )


# ---------------------------------------------------------------------------
# arming
# ---------------------------------------------------------------------------

_EXACT_FLAVORS = {
    BaselineRF: "baseline",
    RFHStorage: "rfh",
    RFVStorage: "rfv",
    ReglessStorage: "regless",
}


def _compat_reason(gpu: "GPU", shard: Shard) -> Optional[str]:
    """Why this shard must stay on the interpreter (None = compatible)."""
    d = shard.__dict__
    if "issue" in d or "_writeback" in d or "_try_issue" in d:
        return "tracer"  # repro.sim.trace wraps these as instance attrs
    if shard._track_ws:
        return "working_set"
    storage = shard.storage
    flavor = _EXACT_FLAVORS.get(type(storage))
    if flavor is None:
        # Subclasses included: fault injection swaps onto throwaway
        # subclasses (FrozenAdmission, DroppedWakes) whose behavior the
        # specialized gates must not bake away.
        return "storage"
    if flavor == "regless":
        if type(storage.cm) is not CapacityManager:
            return "cm_patched"
        if storage.compiled is not gpu.compiled:
            return "compiled_mismatch"
    if flavor == "rfv" and type(storage).can_issue is not RFVStorage.can_issue:
        return "storage"  # pragma: no cover - defensive
    return None


def _build_globals(shard: Shard, flavor: str) -> Dict[str, object]:
    sm = shard.sm
    program = sm.program
    compiled = sm.compiled
    storage = shard.storage
    g: Dict[str, object] = {
        "__builtins__": {"len": len},
        "LaneValues": LaneValues,
        "ZERO": ZERO,
        "OK": _ISSUE_OK,
        "PARK": _FAIL_PARK,
        "KEEP": _FAIL_KEEP,
        "_WB": _Writeback,
        "_LC": _LoadContinuation,
        "ACTIVE": WarpState.ACTIVE,
        "PRELOADING": WarpState.PRELOADING,
        "_TRY_ISSUE": Shard._try_issue,
        # _classify bindings (per shard: residency sets / CM contexts are
        # per-storage instances).
        "PROGRAM": program,
        "SM_OBJ": sm,
        "WHEEL": sm.wheel,
        "AFTER": sm.wheel.after,
        "_WBC": _JITWriteback,
    }
    if flavor == "rfv":
        g["can_issue"] = storage.can_issue
        g["STALL_REASON"] = storage.stall_reason
    if flavor in ("rfv", "regless"):
        g["on_issue"] = storage.on_issue
    if flavor in ("baseline", "rfh"):
        g["RESIDENT"] = storage._resident_ctas
    if flavor == "rfv":
        g["RFV"] = storage
        g["NEED_VER"] = storage._need_ver
    if flavor == "regless":
        g["CM_CTX"] = storage.cm.ctx
        g["OSU_BLOCKED"] = storage.osu.preload_blocked_at_l1
        g["OSU_CW"] = storage.osu.complete_write
        g["OSU_ERASE"] = storage.osu.erase
        g["OSU_EVICT"] = storage.osu.mark_evictable
        g["CM_ON_WB"] = storage.cm.on_writeback
    if shard.scheduler.demotes:
        g["ELIGIBLE"] = shard.scheduler.eligible
    if _full_loop(shard):
        # The generated cycle()/reevaluate() reach shard collections and
        # peers through module globals; every one of these objects is
        # mutated in place and never rebound.
        g["__builtins__"]["dict"] = dict
        g["__builtins__"]["tuple"] = tuple
        g.update(
            _heappop=heapq.heappop,
            WHEEL=shard._wheel,
            HAS_WORK=storage.has_work,
            STORAGE_CYCLE=storage.cycle,
            HEAP=shard._wake_heap,
            READY=shard._ready,
            DYNAMIC=shard._dynamic,
            PARKED=shard._parked_bins,
            WAKE_AT=shard._wake_at,
            ISSUED_W=shard._issued_warps,
            STALLS=shard.stalls,
            SCHED=shard.scheduler,
            BEGIN_SCAN=shard.scheduler.begin_scan,
            NOTIFY_ISSUE=shard.scheduler.notify_issue,
            ON_WARP_EXIT=storage.on_warp_exit,
            NOTIFY_DONE=sm.notify_warp_done,
            DEMOTE_BINS=_DEMOTE_BINS,
            ACCT_PARK=_ACCT_PARK_BINS,
            STORAGE_BINS=_STORAGE_BINS,
            ISSUED=ISSUED,
        )
        if shard.stalls is not None:
            g["COMMIT"] = shard.stalls.commit
        if flavor == "regless":
            g["STALL_REASON_R"] = storage.stall_reason
    for rid, region in enumerate(compiled.regions):
        g[f"REG{rid}"] = region
    for pc, insn in enumerate(program):
        g[f"I{pc}"] = insn
        if insn.reg_dsts:
            g[f"RD{pc}"] = insn.reg_dsts[0]
        for k, s in enumerate(insn.srcs):
            if type(s) is Imm:
                g[f"C{pc}_{k}"] = LaneValues.uniform(s.value)
    return g


def _arm_shard(gpu: "GPU", shard: Shard) -> Dict[str, object]:
    reason = _compat_reason(gpu, shard)
    if reason is not None:
        return {"armed": 0, "reason": reason,
                "batch": {"armed": 0, "reason": warpbatch.off_reason()}}
    flavor = _EXACT_FLAVORS[type(shard.storage)]
    # Cohort batching rides beneath the JIT: decide before generation so
    # the cycle loop / steps / classifier include the batch machinery.
    batch_reason = warpbatch.compat_reason(
        shard, full_loop=_full_loop(shard)
    )
    batch = batch_reason is None
    t0 = time.perf_counter()
    source, n_ok, n_generic, mem_pcs = _program_source(shard, flavor, batch)
    code = _CODE_CACHE.get(source)
    cache_hit = code is not None
    if code is None:
        code = compile(source, f"<regionjit:{flavor}>", "exec")
        _CODE_CACHE[source] = code
    g = _build_globals(shard, flavor)
    exec(code, g)
    steps = g["_STEPS"]
    compile_s = time.perf_counter() - t0

    sm = shard.sm
    storage = shard.storage
    n_regions = len(sm.compiled.regions)
    # Per-shard hooks the generated code reaches through one attribute load.
    shard._jit_hits = [0] * (n_regions + 1)
    shard._jit_falls = [0]
    shard._jit_divlines = gpu.divergent_lines
    shard._jit_sm_id = sm.sm_id
    shard._jit_mem_request = sm.hierarchy.request
    shard._jit_pred_mask = gpu.oracle.pred_mask
    shard._jit_load_value = gpu.oracle.load_value
    shard._jit_take_mem_slot = sm.take_mem_slot
    if type(sm.counters) is Counters:
        # Steps bump the flat counter dict directly (defaultdict(float):
        # the += path is the same 0.0-seeded float add Counters.inc does).
        shard._jit_counts = sm.counters._counts
    if flavor in ("baseline", "rfh"):
        # The residency set is mutated in place (discard/add), never
        # rebound — caching the set object itself is safe.
        shard._jit_resident = storage._resident_ctas
    if flavor == "regless":
        shard._jit_cm_ctx = storage.cm.ctx
        shard._jit_metadata = storage.metadata_slots
        shard._jit_osu_blocked = storage.osu.preload_blocked_at_l1

    program_len = shard._program_len
    notify_done = sm.notify_warp_done
    on_warp_exit = storage.on_warp_exit

    def driver(warp, now, _steps=steps):
        # Interpreter prologue: quick checks, reconvergence, end-of-program
        # exit synthesis — then tail-call the compiled step for pc.
        if warp.exited or warp.at_barrier or now < warp.stall_until:
            return _FAIL_PARK
        stack = warp.stack
        top = stack[-1]
        while len(stack) > 1 and top.pc == top.reconv_pc:
            stack.pop()
            top = stack[-1]
        pc = top.pc
        if pc >= program_len:
            warp.exited = True
            on_warp_exit(warp)
            notify_done(warp)
            return _FAIL_PARK
        return _steps[pc](shard, warp, now, top)

    shard._try_issue = driver
    # The specialized classify serves every caller (_account_stalls,
    # reevaluate, _maybe_park) — same ladder, storage virtual calls inlined.
    shard._classify = g["_classify"]
    full_loop = "_cycle" in g
    if full_loop:
        shard.reevaluate = MethodType(g["_reevaluate"], shard)
        # Late-bound: _cycle reads REEVALUATE from its globals at call
        # time, so installing it after exec is safe.
        g["REEVALUATE"] = shard.reevaluate
        if "_account_stalls" in g:
            shard._account_stalls = MethodType(g["_account_stalls"], shard)
        shard.cycle = MethodType(g["_cycle"], shard)
    if batch:
        # Installed after the MethodType binds: attach_batch shadows the
        # generated _account_stalls with the covered-accounting closure.
        # BST / MEMSENS / BLINES are late-bound like REEVALUATE — the
        # generated code resolves its globals at call time.
        bst = warpbatch.attach_batch(
            shard, flavor,
            classify_b=g["_classify_b"],
            memsrc={pc: shard._program[pc].srcs[0].index for pc in mem_pcs},
            line_bytes=sm.config.line_bytes,
            divlines=gpu.divergent_lines,
        )
        g["BST"] = bst
        g["MEMSENS"] = warpbatch.MEMSENS
        g["BLINES"] = shard._batch_lines
    return {
        "armed": 1,
        "flavor": flavor,
        "compile_s": compile_s,
        "steps": n_ok,
        "generic_steps": n_generic,
        "regions": n_regions,
        "cache_hit": 1 if cache_hit else 0,
        "full_loop": 1 if full_loop else 0,
        "batch": (
            {"armed": 1, "flavor": flavor} if batch
            else {"armed": 0, "reason": batch_reason}
        ),
        "_shard": shard,
    }


def arm_gpu(gpu: "GPU") -> None:
    """Arm every compatible shard of ``gpu``; records a per-shard report
    readable via :func:`collect_jit`.  Idempotent per GPU."""
    if getattr(gpu, "_jit_report", None) is not None:
        return
    report: Dict[Tuple[int, int], Dict[str, object]] = {}
    gpu._jit_report = report
    if not jit_enabled():
        for sm in gpu.sms:
            for shard in sm.shards:
                report[(sm.sm_id, shard.shard_id)] = {
                    "armed": 0, "reason": "env_off",
                    "batch": {"armed": 0, "reason": warpbatch.off_reason()},
                }
        return
    for sm in gpu.sms:
        for shard in sm.shards:
            report[(sm.sm_id, shard.shard_id)] = _arm_shard(gpu, shard)


def collect_jit(gpu: "GPU") -> Dict[str, object]:
    """Flatten the arm report + live hit counters into ``sm{i}.shard{j}.jit.*``
    metric paths (kept outside SimStats: wall-clock observability must not
    perturb the bit-identity contract on simulated results)."""
    out: Dict[str, object] = {}
    report = getattr(gpu, "_jit_report", None) or {}
    for (smid, shid), info in sorted(report.items()):
        prefix = f"sm{smid}.shard{shid}.jit."
        out[prefix + "armed"] = info.get("armed", 0)
        if not info.get("armed"):
            out[prefix + "reason"] = info.get("reason", "unknown")
            continue
        out[prefix + "compile_s"] = round(info["compile_s"], 6)
        out[prefix + "steps"] = info["steps"]
        out[prefix + "generic_steps"] = info["generic_steps"]
        out[prefix + "regions"] = info["regions"]
        out[prefix + "cache_hit"] = info["cache_hit"]
        shard = info["_shard"]
        out[prefix + "issued"] = sum(shard._jit_hits)
        out[prefix + "fallback_issued"] = shard._jit_falls[0]
    return out
