"""The capacity manager (paper section 5.1, Figure 9).

One CM per shard.  It keeps a per-warp state machine —

    INACTIVE -> PRELOADING -> ACTIVE -> DRAINING -> INACTIVE

— a stack of inactive warps (top = most recently drained, whose registers
are most likely still staged), and per-bank reservation counters.  Each
cycle it tries to activate the top-of-stack warp: if every bank can fit the
warp's next region (compiler bank-usage annotation, rotated by warp id), the
CM reserves the capacity and queues the region's preloads and cache
invalidations; once the OSU reports all preloads done the warp becomes
ACTIVE and the (unmodified GTO) warp scheduler may issue from it.

When a region issues its last instruction the warp DRAINs: remaining
write-backs (e.g. a trailing global load) keep their entries until they
land, then the reservation is released and the warp returns to the stack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compiler.pipeline import CompiledKernel
from ..compiler.regions import Region
from ..energy.accounting import Counters
from ..sim.warp import Warp
from .config import ReglessConfig
from .osu import OperandStagingUnit

__all__ = ["WarpState", "CapacityManager"]

#: "no deadline" sentinel for the blocked-memo wake-up cycles.
_NEVER = float("inf")


class WarpState(enum.Enum):
    INACTIVE = "inactive"
    PRELOADING = "preloading"
    ACTIVE = "active"
    DRAINING = "draining"
    FINISHED = "finished"


@dataclass
class _WarpCtx:
    state: WarpState = WarpState.INACTIVE
    region: Optional[Region] = None
    reserved: Optional[List[int]] = None  # per-bank reservation of `region`
    preloads_left: int = 0
    metadata_pending: int = 0
    activated_at: int = 0
    #: cycle the region became ACTIVE (preloads done) / began draining —
    #: for region-span tracing (repro.obs.perfetto).
    active_at: int = 0
    drain_at: int = 0
    last_issue_done: bool = False
    #: cycle at which the warp last became INACTIVE (for aging).
    inactive_since: int = 0


class CapacityManager:
    """Admission control for one shard's warps."""

    def __init__(
        self,
        config: ReglessConfig,
        compiled: CompiledKernel,
        counters: Counters,
        osu: OperandStagingUnit,
        warps: List[Warp],
    ):
        self.config = config
        self.compiled = compiled
        self.counters = counters
        self.osu = osu
        self.warps = {w.wid: w for w in warps}
        self.ctx: Dict[int, _WarpCtx] = {w.wid: _WarpCtx() for w in warps}
        #: inactive warps; activation candidates pop from the end (top).
        self.stack: List[int] = [w.wid for w in reversed(warps)]
        #: total reservation per bank across all active/preloading regions.
        self.reserved: List[int] = [0] * config.banks_per_shard
        self._stall_cycles = 0
        #: warps currently PRELOADING (O(1) ``idle``).
        self._preloading_count = 0
        # Blocked-candidate memo (demand clock): when the top candidate does
        # not fit, nothing this CM could do on later cycles changes the
        # outcome until either (a) capacity/stack state mutates — every such
        # mutator calls :meth:`_invalidate_memo` — or (b) a wheel-time
        # deadline passes (candidate aging, emergency activation).  While
        # the memo holds, :meth:`needs_cycle` is False and the elided
        # blocked calls are accrued into ``_stall_cycles`` in closed form.
        self._memo_blocked = False
        #: last cycle whose (would-be) blocked call is already reflected in
        #: ``_stall_cycles``.
        self._accrued_to = 0
        #: wheel cycle at which aging switches the candidate pick.
        self._aging_at = _NEVER
        #: cycle at which the emergency-activation threshold is reached.
        self._emergency_at = _NEVER
        # Dynamic region statistics (Table 2).
        self.region_executions = 0
        self.region_cycles_total = 0
        #: optional region-lifecycle subscriber, set by a Tracer:
        #: ``region_trace(wid, rid, start, active, drain, end)``.
        self.region_trace = None
        #: optional admission subscriber, set by the storage backend:
        #: ``wake(warp)`` whenever a warp's CM state advances toward
        #: issueability (INACTIVE→PRELOADING, →ACTIVE), so the shard can
        #: re-admit parked warps to its ready set.
        self.wake = None

    # -- queries used by the storage backend -------------------------------------

    def state_of(self, wid: int) -> WarpState:
        return self.ctx[wid].state

    def active_region(self, wid: int) -> Optional[Region]:
        return self.ctx[wid].region

    def can_issue(self, warp: Warp, pc: int) -> bool:
        ctx = self.ctx[warp.wid]
        return (
            ctx.state is WarpState.ACTIVE
            and ctx.region is not None
            and ctx.region.contains_pc(pc)
        )

    def consume_metadata(self, warp: Warp, pc: int) -> int:
        ctx = self.ctx[warp.wid]
        if ctx.metadata_pending and ctx.region is not None and pc == ctx.region.start_pc:
            slots = ctx.metadata_pending
            ctx.metadata_pending = 0
            return slots
        return 0

    @property
    def idle(self) -> bool:
        """No activation can be pending without an external event."""
        return self._preloading_count == 0

    # -- per-cycle admission -----------------------------------------------------------

    def needs_cycle(self, now: int) -> bool:
        """Would :meth:`cycle` do (or account) anything at ``now``?  O(1).
        False only while the blocked-candidate memo holds and neither
        wake-up deadline has passed."""
        if not self.stack:
            return False
        if self._memo_blocked:
            return now >= self._aging_at or now >= self._emergency_at
        return True

    def _set_state(self, ctx: _WarpCtx, new: WarpState) -> None:
        old = ctx.state
        if old is not new:
            if old is WarpState.PRELOADING:
                self._preloading_count -= 1
            elif new is WarpState.PRELOADING:
                self._preloading_count += 1
            ctx.state = new

    def _invalidate_memo(self, horizon: int) -> None:
        """Capacity/stack state is about to change: settle the lazily
        accrued blocked calls up to ``horizon`` (inclusive) and re-arm
        per-cycle admission."""
        if self._memo_blocked:
            gap = horizon - self._accrued_to
            if gap > 0:
                self._stall_cycles += gap
            self._memo_blocked = False

    def on_fast_forward(self, cycles: int) -> None:
        """``cycles`` dead cycles were skipped with no :meth:`cycle` calls
        (matching the per-cycle reference, which never cycled storages
        during a skip): shift the called-cycle accounting across the gap.
        Aging is wheel-time and deliberately not shifted."""
        if self._memo_blocked:
            self._accrued_to += cycles
            if self._emergency_at is not _NEVER:
                self._emergency_at += cycles

    def cycle(self, now: int) -> None:
        if not self.stack:
            return
        if self._memo_blocked:
            # Settle the skipped blocked calls (cycles _accrued_to+1 ..
            # now-1 — each would have failed the same fit test); this call
            # then re-runs the test for ``now`` with fresh state.  Zero gap
            # when no cycle was actually skipped (direct per-cycle callers).
            self._memo_blocked = False
            gap = (now - 1) - self._accrued_to
            if gap > 0:
                self._stall_cycles += gap
        wid = self._pick_candidate(now)
        warp = self.warps[wid]
        if warp.exited:
            self._drop_from_stack(wid)
            return
        ctx = self.ctx[wid]
        if ctx.state is not WarpState.INACTIVE:
            self._drop_from_stack(wid)
            return
        # The SIMT stack may still hold popped-at-birth reconvergence
        # entries (e.g. a fully-taken path landing on the reconvergence
        # point); resolve them now so we stage the region the warp will
        # actually execute.
        warp.maybe_reconverge()
        if warp.pc >= self.compiled.kernel.num_instructions:
            # Ran off the end: there is no region left to stage, and the
            # shard synthesizes the EXIT without CM admission.  Leaving the
            # warp on the stack would pin the activation candidate slot
            # (the top is re-picked every cycle) — drop it instead.
            self._drop_from_stack(wid)
            self.counters.inc("cm_dead_warp_drop")
            return

        region = self.compiled.region_of_pc(warp.pc)
        rotated = self.osu.rotate_usage(region.bank_usage, wid)
        # A region whose footprint exceeds a whole bank can never be
        # reserved normally; clamp to bank capacity (it then runs as that
        # bank's sole user, overflowing into evictable lines).
        for b, need in enumerate(rotated):
            cap = self.osu.banks[b].capacity
            if need > cap:
                rotated[b] = cap
                self.counters.inc("osu_clamped_reservation")
        fits = self.osu.reservable(rotated, self.reserved)
        emergency = False
        if not fits:
            self._stall_cycles += 1
            if self._stall_cycles >= self.config.emergency_cycles:
                emergency = True
                self.counters.inc("osu_overflow_activation")
            else:
                self._arm_blocked_memo(now)
                return
        self._stall_cycles = 0

        # Reserve and start preloading.
        for b, need in enumerate(rotated):
            self.reserved[b] += need
        self._set_state(ctx, WarpState.PRELOADING)
        ctx.region = region
        ctx.reserved = rotated
        ctx.activated_at = now
        ctx.active_at = now
        ctx.drain_at = now
        ctx.last_issue_done = False
        ann = self.compiled.annotations[region.rid]
        ctx.metadata_pending = ann.n_metadata_insns
        ctx.preloads_left = len(ann.preloads)
        self._drop_from_stack(wid)
        if emergency:
            self.counters.inc("osu_overflow")

        for preload in ann.preloads:
            self.osu.enqueue_preload(wid, preload.reg.index, preload.invalidate)
        for reg in ann.cache_invalidates:
            self.osu.enqueue_invalidate(wid, reg.index)

        if ctx.preloads_left == 0:
            self._activate(wid)
        elif self.wake is not None:
            # Now PRELOADING: the parked warp's stall bin changes even
            # though it cannot issue yet.
            self.wake(warp)

    def _arm_blocked_memo(self, now: int) -> None:
        """The candidate did not fit at ``now``; compute when a repeat of
        this exact test could first decide differently with unchanged
        state."""
        self._memo_blocked = True
        self._accrued_to = now
        # Emergency activation fires when the per-(called-)cycle stall
        # counter reaches the threshold.
        self._emergency_at = now + (self.config.emergency_cycles - self._stall_cycles)
        # Candidate aging: the pick switches to the longest-waiting warp
        # once its wait exceeds the threshold — a wheel-time deadline.  If
        # aging already picked this candidate, only state changes (or the
        # emergency) can help.
        if not self.config.warp_stack_lifo:
            self._aging_at = _NEVER
        else:
            oldest_since = min(
                self.ctx[w].inactive_since for w in self.stack
            )
            aging_at = oldest_since + self.config.activation_aging_cycles + 1
            self._aging_at = aging_at if now < aging_at else _NEVER

    def _pick_candidate(self, now: int) -> int:
        """Normally the stack top (most recently drained: its inputs are the
        most likely to still be staged).  To prevent capacity starvation —
        churning warps re-entering at the top can otherwise pin a blocked
        warp at the bottom forever — the longest-waiting warp wins once its
        wait exceeds the aging threshold."""
        if not self.config.warp_stack_lifo:
            return self.stack[0]
        oldest = min(self.stack, key=lambda w: self.ctx[w].inactive_since)
        wait = now - self.ctx[oldest].inactive_since
        if wait > self.config.activation_aging_cycles:
            return oldest
        return self.stack[-1]

    def _drop_from_stack(self, wid: int) -> None:
        try:
            self.stack.remove(wid)
        except ValueError:
            pass

    def _activate(self, wid: int) -> None:
        ctx = self.ctx[wid]
        self._set_state(ctx, WarpState.ACTIVE)
        wheel = getattr(self.osu, "wheel", None)
        if wheel is not None:
            ctx.active_at = wheel.now
        self.counters.inc("region_activations")
        if self.wake is not None:
            self.wake(self.warps[wid])

    # -- OSU / shard callbacks ------------------------------------------------------------

    def on_preload_done(self, wid: int, source: str) -> None:
        ctx = self.ctx.get(wid)
        if ctx is None or ctx.state is not WarpState.PRELOADING:
            return
        ctx.preloads_left -= 1
        if ctx.preloads_left <= 0:
            self._activate(wid)

    def on_last_issue(self, warp: Warp, now: int) -> None:
        """The region's final instruction issued: begin draining.

        Capacity not needed for the still-pending write-backs is released
        immediately — e.g. a region ending in a global load keeps only the
        load's destination entry reserved while the value is in flight
        (paper section 5.1)."""
        self._invalidate_memo(now)
        ctx = self.ctx[warp.wid]
        ctx.last_issue_done = True
        self._set_state(ctx, WarpState.DRAINING)
        ctx.drain_at = now
        if warp.inflight == 0:
            self._finish_region(warp, now)
            return
        self._release_all_but_pending(warp, ctx)

    def _release_all_but_pending(self, warp: Warp, ctx: _WarpCtx) -> None:
        if ctx.reserved is None:
            return
        banks = self.config.banks_per_shard
        kept = [0] * banks
        for reg_index in warp.pending_regs:
            # The OSU owns the register→bank mapping; re-deriving it here
            # silently diverges if the hash ever changes.
            kept[self.osu.bank_of(warp.wid, reg_index)] += 1
        for b in range(banks):
            kept[b] = min(kept[b], ctx.reserved[b])
            self.reserved[b] -= ctx.reserved[b] - kept[b]
        ctx.reserved = kept

    def on_writeback(self, warp: Warp, now: int) -> None:
        ctx = self.ctx[warp.wid]
        if ctx.state is WarpState.DRAINING and warp.inflight == 0:
            # Write-backs fire in wheel-tick context, before this cycle's
            # admission pass — the memo settles only through ``now - 1``.
            self._invalidate_memo(now - 1)
            self._finish_region(warp, now)

    def _finish_region(self, warp: Warp, now: int) -> None:
        ctx = self.ctx[warp.wid]
        if ctx.reserved is not None:
            for b, need in enumerate(ctx.reserved):
                self.reserved[b] -= need
        self.region_executions += 1
        self.region_cycles_total += max(0, now - ctx.activated_at)
        if self.region_trace is not None and ctx.region is not None:
            # A warp killed mid-region (on_warp_exit) never drained.
            drain = ctx.drain_at if ctx.last_issue_done else now
            self.region_trace(
                warp.wid, ctx.region.rid,
                ctx.activated_at, ctx.active_at, drain, now,
            )
        ctx.region = None
        ctx.reserved = None
        if warp.exited:
            self._set_state(ctx, WarpState.FINISHED)
            return
        self._set_state(ctx, WarpState.INACTIVE)
        ctx.inactive_since = now
        self.stack.append(warp.wid)  # most-recent on top

    def on_warp_exit(self, warp: Warp, now: int) -> None:
        self._invalidate_memo(now)
        ctx = self.ctx[warp.wid]
        self._drop_from_stack(warp.wid)
        if ctx.state in (WarpState.ACTIVE, WarpState.DRAINING, WarpState.PRELOADING):
            # Release on the spot; pending write-backs to erased entries are
            # ignored gracefully by the OSU.
            if warp.inflight == 0:
                self._finish_region(warp, now)
                self._set_state(ctx, WarpState.FINISHED)
            else:
                self._set_state(ctx, WarpState.DRAINING)
        else:
            self._set_state(ctx, WarpState.FINISHED)

    def mean_region_cycles(self) -> float:
        if self.region_executions == 0:
            return 0.0
        return self.region_cycles_total / self.region_executions
