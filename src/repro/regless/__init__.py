"""The RegLess hardware model: OSU, capacity manager, compressor."""

from .backend import ReglessStorage
from .capacity import CapacityManager, WarpState
from .compressor import Compressor, COMPRESS_PATTERNS, match_pattern
from .config import ReglessConfig
from .mapping import RegisterMapping, REGS_PER_COMPRESSED_LINE
from .osu import Bank, OperandStagingUnit

__all__ = [
    "ReglessStorage",
    "CapacityManager",
    "WarpState",
    "Compressor",
    "COMPRESS_PATTERNS",
    "match_pattern",
    "ReglessConfig",
    "RegisterMapping",
    "REGS_PER_COMPRESSED_LINE",
    "Bank",
    "OperandStagingUnit",
]
