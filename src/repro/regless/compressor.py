"""The RegLess pattern compressor (paper section 5.3).

On the eviction path, register values are matched against a fixed set of
simple patterns — constants (all lanes equal), stride-1 and stride-4
sequences, and their half-warp variants.  A compressed register costs 4-8
bytes instead of a 128-byte line, so 15 compressed registers share one cache
line in a dedicated memory space.

The compressor keeps:

* a **bit vector** indexed by register slot saying whether the current
  memory copy is compressed — checked on every preload so the unit never
  fetches a compressed line just to discover a register is uncompressed;
* a small **cache** of compressed lines (16ish lines), so recently evicted
  compressed registers can be re-inflated without touching the L1.

On our affine lane-value domain the patterns are exact: UNIFORM matches the
constant pattern, AFFINE stride 1/4 match the stride patterns.  Half-warp
patterns are represented by AFFINE values whose stride matches in each half
(the domain cannot express mixed halves, so the half-warp encodings add no
extra coverage here — noted in DESIGN.md).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

from ..sim.values import LaneValues
from .mapping import REGS_PER_COMPRESSED_LINE, RegisterMapping

__all__ = ["Compressor", "match_pattern", "COMPRESS_PATTERNS"]

COMPRESS_PATTERNS = (
    "constant",
    "stride1",
    "stride4",
    "half_stride1",
    "half_stride4",
)


def match_pattern(value: LaneValues) -> Optional[str]:
    """The compression pattern matching ``value``, or None."""
    if value.is_uniform:
        return "constant"
    if value.is_affine:
        if abs(value.stride) == 1:
            return "stride1"
        if abs(value.stride) == 4:
            return "stride4"
    return None


class Compressor:
    """One shard's compressor unit."""

    def __init__(
        self,
        counters,  # Counters or a repro.obs.metrics.MetricScope
        mapping: RegisterMapping,
        cache_lines: int = 12,
        enabled: bool = True,
    ):
        self.counters = counters
        self.mapping = mapping
        self.cache_lines = cache_lines
        self.enabled = enabled
        #: slots whose memory copy is compressed (the bit vector).
        self._bitvec: Set[int] = set()
        #: compressed-line cache: line addr -> dirty flag (LRU order).
        self._cache: "OrderedDict[int, bool]" = OrderedDict()
        #: per-cycle port (one compression/decompression per cycle).
        self._port_used = False
        #: per-pattern store counters, resolved once (hot path).
        self._c_pattern = {p: f"compress_{p}" for p in COMPRESS_PATTERNS}

    # -- per-cycle port ---------------------------------------------------------

    def begin_cycle(self) -> None:
        self._port_used = False

    @property
    def port_free(self) -> bool:
        return not self._port_used

    def _take_port(self) -> None:
        self._port_used = True

    # -- preload path -----------------------------------------------------------------

    def is_compressed(self, reg_index: int, warp_id: int) -> bool:
        """Bit-vector check (adds ``bitvec_latency`` to OSU misses)."""
        return self.mapping.slot(reg_index, warp_id) in self._bitvec

    def cache_has_line(self, reg_index: int, warp_id: int) -> bool:
        addr = self.mapping.compressed_address(reg_index, warp_id)
        return addr in self._cache

    def fetch(self, reg_index: int, warp_id: int) -> Optional[str]:
        """Service a preload of a compressed register.

        Returns ``"compressor"`` on a compressed-cache hit, ``"l1"`` when the
        compressed line must come from L1 (the caller issues that request),
        or None when the port is busy this cycle.
        """
        if not self.port_free:
            return None
        self._take_port()
        self.counters.inc("compressor_access")
        addr = self.mapping.compressed_address(reg_index, warp_id)
        if addr in self._cache:
            self._cache.move_to_end(addr)
            self.counters.inc("compressor_hit")
            return "compressor"
        return "l1"

    def install_line(self, reg_index: int, warp_id: int) -> Optional[int]:
        """Insert the compressed line after an L1 fetch; returns the address
        of a dirty victim line to write back, if any."""
        addr = self.mapping.compressed_address(reg_index, warp_id)
        return self._insert(addr, dirty=False)

    # -- eviction path ------------------------------------------------------------------

    def try_compress(
        self, reg_index: int, warp_id: int, value: LaneValues
    ) -> Tuple[bool, Optional[int]]:
        """Attempt to compress an evicted register.

        Returns ``(compressed, victim_line_addr)``: when compressed, the
        value was folded into a (possibly newly allocated) cache line and
        ``victim_line_addr`` is a dirty compressed line that must be written
        to L1 to make room (or None).  When not compressed the caller sends
        the full register to L1.
        """
        if not self.enabled:
            return False, None
        self.counters.inc("compressor_access")
        pattern = match_pattern(value)
        slot = self.mapping.slot(reg_index, warp_id)
        if pattern is None:
            self._bitvec.discard(slot)
            self._reconcile_line(slot)
            return False, None
        self.counters.inc("compressor_store")
        self.counters.inc(self._c_pattern[pattern])
        self._bitvec.add(slot)
        addr = self.mapping.compressed_address(reg_index, warp_id)
        victim = self._insert(addr, dirty=True)
        return True, victim

    def _insert(self, addr: int, dirty: bool) -> Optional[int]:
        if addr in self._cache:
            self._cache[addr] = self._cache[addr] or dirty
            self._cache.move_to_end(addr)
            return None
        victim: Optional[int] = None
        if len(self._cache) >= self.cache_lines:
            v_addr, v_dirty = self._cache.popitem(last=False)
            if v_dirty:
                victim = v_addr
        self._cache[addr] = dirty
        return victim

    # -- invalidation -------------------------------------------------------------------

    def _reconcile_line(self, slot: int) -> None:
        """Drop the cached compressed line once no live bit-vector slot maps
        to it.  Without this, a register that re-evicts *uncompressed* leaves
        its old compressed copy in the cache; when it later re-evicts
        compressed, ``_insert`` merges into the stale line and its dirty
        write-back resurrects dead neighbours in L1."""
        line = slot // REGS_PER_COMPRESSED_LINE
        addr = self.mapping.compressed_base + line * self.mapping.line_bytes
        if addr not in self._cache:
            return
        lo = line * REGS_PER_COMPRESSED_LINE
        if any(s in self._bitvec
               for s in range(lo, lo + REGS_PER_COMPRESSED_LINE)):
            return  # other registers still live on this line
        del self._cache[addr]
        self.counters.inc("compressor_line_reclaim")

    def invalidate(self, reg_index: int, warp_id: int) -> None:
        """Drop a dead register from the bit vector (cache lines stay while
        any sibling register on them is still compressed)."""
        slot = self.mapping.slot(reg_index, warp_id)
        self._bitvec.discard(slot)
        self._reconcile_line(slot)

    @property
    def compressed_count(self) -> int:
        return len(self._bitvec)
