"""The operand staging unit (paper section 5.2, Figure 10).

One OSU per shard: 8 banks, each with tag storage and ``lines_per_bank``
128-byte data lines.  Registers map to bank ``(warp_id + reg) % 8`` — the
warp-id rotation spreads bank load while preserving the compiler's per-bank
usage counts.

Each bank tracks three classes of lines:

* **active** — reserved by a running/preloading region; not evictable;
* **clean** — evictable, value matches the L1 copy (drop on reuse);
* **dirty** — evictable, modified (write back to L1 before reuse).

Allocation takes free space first, then clean lines, then dirty lines
(paper's priority; the ``ordered_eviction`` ablation randomizes it).

Per-bank preload queues implement the section 5.2.1 pipeline: tag check ->
compressor bit-vector -> compressor cache or L1 fetch.  Evictions and cache
invalidations flow through shard-level queues that compete for the one
L1 request per cycle.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..energy.accounting import Counters
from ..mem.l1 import L1RegCache
from ..sim.events import EventWheel
from ..sim.values import LaneValues, mix_hash
from .compressor import Compressor
from .config import ReglessConfig
from .mapping import RegisterMapping

__all__ = ["OperandStagingUnit", "Bank"]

Key = Tuple[int, int]  # (warp id, register index)


@dataclass(slots=True)
class _Entry:
    state: str  # "active" | "clean" | "dirty"
    dirty: bool  # modified since last L1 read
    #: an (uncompressed) copy of this register may reside in the L1.
    has_l1_copy: bool = False


class Bank:
    """One OSU bank: tags plus free/clean/dirty bookkeeping."""

    def __init__(self, capacity: int, ordered_eviction: bool = True):
        self.capacity = capacity
        self.ordered_eviction = ordered_eviction
        self.tags: Dict[Key, _Entry] = {}
        self.clean: "OrderedDict[Key, None]" = OrderedDict()
        self.dirty: "OrderedDict[Key, None]" = OrderedDict()

    @property
    def free(self) -> int:
        return self.capacity - len(self.tags)

    def has(self, key: Key) -> bool:
        return key in self.tags

    def acquire(self, key: Key) -> bool:
        """Re-reserve a resident line for a new region (preload hit)."""
        entry = self.tags.get(key)
        if entry is None:
            return False
        if entry.state == "clean":
            del self.clean[key]
        elif entry.state == "dirty":
            del self.dirty[key]
        entry.state = "active"
        return True

    def allocate(self, key: Key) -> Tuple[bool, Optional[Key]]:
        """Insert an active line for ``key``.

        Returns ``(ok, victim)``: ``victim`` is an evicted dirty key the
        caller must write back.  When the bank holds only active lines the
        line is allocated anyway (bounded overflow — the capacity manager's
        reservations make this rare) and the overflow is visible via
        ``len(tags) > capacity``.
        """
        if key in self.tags:
            self.acquire(key)
            return True, None
        victim: Optional[Key] = None
        if self.free <= 0:
            if self.clean and (self.ordered_eviction or not self.dirty):
                v, _ = self.clean.popitem(last=False)
                del self.tags[v]
            elif self.dirty:
                v, _ = self.dirty.popitem(last=False)
                del self.tags[v]
                victim = v
        self.tags[key] = _Entry("active", dirty=False)
        return True, victim

    def entry(self, key: Key) -> Optional[_Entry]:
        return self.tags.get(key)

    def erase(self, key: Key) -> bool:
        entry = self.tags.pop(key, None)
        if entry is None:
            return False
        if entry.state == "clean":
            del self.clean[key]
        elif entry.state == "dirty":
            del self.dirty[key]
        return True

    def mark_dirty(self, key: Key) -> None:
        entry = self.tags.get(key)
        if entry is not None:
            entry.dirty = True
            if entry.state == "clean":
                del self.clean[key]
                entry.state = "dirty"
                self.dirty[key] = None

    def mark_evictable(self, key: Key) -> Optional[Key]:
        """Release an active line at region end.

        While the bank is in (bounded) active overflow the evictable lists
        must stay empty — a line released over capacity is reclaimed on the
        spot instead of being parked.  Returns the key when the reclaimed
        line was dirty and the caller must write it back.
        """
        entry = self.tags.get(key)
        if entry is None or entry.state != "active":
            return None
        if len(self.tags) > self.capacity:
            del self.tags[key]
            return key if entry.dirty else None
        if entry.dirty:
            entry.state = "dirty"
            self.dirty[key] = None
        else:
            entry.state = "clean"
            self.clean[key] = None
        return None

    @property
    def active_count(self) -> int:
        return len(self.tags) - len(self.clean) - len(self.dirty)

    @property
    def overflow(self) -> int:
        return max(0, len(self.tags) - self.capacity)


@dataclass(slots=True)
class _PreloadJob:
    warp_id: int
    reg: int
    invalidate: bool
    stage: str = "tag"  # tag -> bitvec -> install/l1 -> wait
    ready_at: int = 0
    compressed: bool = False
    source: str = ""
    #: an uncompressed L1 copy exists and must be invalidated on an
    #: invalidating read.
    l1_copy: bool = False



class OperandStagingUnit:
    """One shard's OSU plus its preload/eviction/invalidation pipelines."""

    def __init__(
        self,
        config: ReglessConfig,
        counters: Counters,
        wheel: EventWheel,
        l1: L1RegCache,
        compressor: Compressor,
        mapping: RegisterMapping,
        value_of: Callable[[int, int], LaneValues],
        on_preload_done: Callable[[int, str], None],
    ):
        self.config = config
        self.counters = counters
        self.wheel = wheel
        self.l1 = l1
        self.compressor = compressor
        self.mapping = mapping
        self.value_of = value_of
        self.on_preload_done = on_preload_done
        self.banks: List[Bank] = [
            Bank(config.lines_per_bank, config.ordered_eviction)
            for _ in range(config.banks_per_shard)
        ]
        self._n_banks = len(self.banks)
        self._preload_q: List[Deque[_PreloadJob]] = [
            deque() for _ in range(config.banks_per_shard)
        ]
        #: queued preload jobs across all banks (O(1) work test; jobs that
        #: left the queue for the MSHR "wait" stage are excluded — their
        #: completion is wheel-event-backed, not pump-driven).
        self._preload_pending = 0
        #: banks with a non-empty preload queue; the pump walks only these.
        self._active_banks: set = set()
        #: (key, value) register evictions awaiting the compressor/L1.
        self._evict_q: Deque[Tuple[Key, LaneValues]] = deque()
        #: dirty compressed lines awaiting an L1 store slot.
        self._line_store_q: Deque[int] = deque()
        #: dead registers awaiting an L1 invalidate slot.
        self._inval_q: Deque[Key] = deque()
        #: register slots that have a copy in the memory system (evicted at
        #: least once).  Preloads of unmaterialized slots are launch values
        #: (thread ids, kernel parameters) served like compressed constants
        #: by the launch mechanism, not fetched from DRAM.
        self._materialized: set = set()
        #: per-source preload counters, resolved once (hot path).
        self._c_preload_src = {
            s: f"preload_src_{s}"
            for s in ("osu", "const", "compressor", "l1", "l2dram")
        }

    # -- geometry -------------------------------------------------------------

    def bank_of(self, warp_id: int, reg: int) -> int:
        return (warp_id + reg) % len(self.banks)

    def bank(self, warp_id: int, reg: int) -> Bank:
        return self.banks[self.bank_of(warp_id, reg)]

    def rotate_usage(self, usage: Tuple[int, ...], warp_id: int) -> List[int]:
        """Per-bank usage of a region once rotated by the warp id."""
        n = len(self.banks)
        rotated = [0] * n
        for b, count in enumerate(usage):
            rotated[(b + warp_id) % n] = count
        return rotated

    # -- execution-path accesses ---------------------------------------------------

    def read(self, warp_id: int, reg: int) -> None:
        self.counters.inc("osu_read")
        bank = self.banks[(warp_id + reg) % self._n_banks]
        if (warp_id, reg) not in bank.tags:
            # Should not happen when annotations are correct; visible in
            # tests as a hard invariant.
            self.counters.inc("osu_read_miss")

    def reserve_write(self, warp_id: int, reg: int) -> None:
        """Allocate the destination entry at issue time (section 5.2.1:
        interior registers get space at their first write)."""
        key = (warp_id, reg)
        bank = self.banks[(warp_id + reg) % self._n_banks]
        if key in bank.tags:
            bank.acquire(key)
            return
        _, victim = bank.allocate(key)
        if victim is not None:
            self._queue_eviction(victim)
        if bank.overflow:
            self.counters.inc("osu_overflow")

    def complete_write(self, warp_id: int, reg: int) -> None:
        self.counters.inc("osu_write")
        self.banks[(warp_id + reg) % self._n_banks].mark_dirty((warp_id, reg))

    def erase(self, warp_id: int, reg: int) -> None:
        self.banks[(warp_id + reg) % self._n_banks].erase((warp_id, reg))

    def mark_evictable(self, warp_id: int, reg: int) -> None:
        victim = self.banks[
            (warp_id + reg) % self._n_banks
        ].mark_evictable((warp_id, reg))
        if victim is not None:
            # Overflow reclaim of a dirty line: write it back like any
            # other dirty eviction.
            self._queue_eviction(victim)

    def erase_warp(self, warp_id: int, n_regs: int) -> None:
        """Drop every entry of an exiting warp (values are dead)."""
        for reg in range(n_regs):
            self.bank(warp_id, reg).erase((warp_id, reg))

    # -- preload / invalidate entry points ---------------------------------------------

    def enqueue_preload(self, warp_id: int, reg: int, invalidate: bool) -> None:
        bank_id = self.bank_of(warp_id, reg)
        self._preload_q[bank_id].append(_PreloadJob(warp_id, reg, invalidate))
        self._preload_pending += 1
        self._active_banks.add(bank_id)

    def enqueue_invalidate(self, warp_id: int, reg: int) -> None:
        self._inval_q.append((warp_id, reg))

    def preload_blocked_at_l1(self, warp_id: int) -> bool:
        """Is one of this warp's preloads at the head of a bank queue,
        stuck in the ``l1`` stage (waiting for the shared L1 request
        port)?  Pure — used by stall attribution to split ``osu_port``
        from plain ``cm_preloading``."""
        for queue in self._preload_q:
            if queue:
                job = queue[0]
                if job.warp_id == warp_id and job.stage == "l1":
                    return True
        return False

    # -- per-cycle pump -----------------------------------------------------------------

    def cycle(self) -> None:
        # Only the preload and eviction pumps touch the compressor port;
        # opening its cycle when neither has work would be a silent no-op.
        if self._preload_pending or self._evict_q:
            self.compressor.begin_cycle()
        if self._preload_pending:
            # Ascending bank order matches the seed's range() walk; sorted()
            # copies, so pumps may discard drained banks mid-iteration.
            # Preloads are enqueued by the CM (which cycles before the OSU),
            # never by the pumps themselves, so the set cannot grow here.
            for bank_id in sorted(self._active_banks):
                self._pump_preloads(bank_id)
        self._pump_evictions()
        self._pump_line_stores()
        self._pump_invalidations()

    @property
    def work_pending(self) -> bool:
        """Would :meth:`cycle` do anything?  O(1); jobs in the MSHR
        ``wait`` stage complete via wheel events, not the pump."""
        return bool(
            self._preload_pending
            or self._evict_q
            or self._line_store_q
            or self._inval_q
        )

    @property
    def idle(self) -> bool:
        return not (
            self._preload_pending
            or self._evict_q
            or self._line_store_q
            or self._inval_q
        )

    # -- preload pipeline ------------------------------------------------------------------

    def _pump_preloads(self, bank_id: int) -> None:
        queue = self._preload_q[bank_id]
        if not queue:
            return
        job = queue[0]
        now = self.wheel.now
        if now < job.ready_at:
            return
        key = (job.warp_id, job.reg)
        bank = self.banks[bank_id]

        if job.stage == "tag":
            self.counters.inc("osu_tag")
            entry = bank.entry(key)
            if entry is not None:
                job.l1_copy = entry.has_l1_copy
                bank.acquire(key)
                self._finish_preload(bank_id, job, "osu")
                return
            job.stage = "bitvec"
            job.ready_at = now + self.config.bitvec_latency
            return

        if job.stage == "bitvec":
            if (job.warp_id, job.reg) not in self._materialized:
                # Launch value: no memory copy exists anywhere; the value is
                # synthesized like a compressed constant.
                self._allocate_and_finish(bank_id, job, "const")
                return
            if self.compressor.enabled and self.compressor.is_compressed(
                job.reg, job.warp_id
            ):
                job.compressed = True
                result = self.compressor.fetch(job.reg, job.warp_id)
                if result is None:
                    return  # compressor port busy; retry
                if result == "compressor":
                    job.ready_at = now + self.config.decompress_latency
                    job.stage = "install"
                    job.source = "compressor"
                    return
                job.stage = "l1"  # compressed line must come from L1
                return
            job.stage = "l1"
            return

        if job.stage == "install":
            self._allocate_and_finish(bank_id, job, job.source)
            return

        if job.stage == "l1":
            addr = (
                self.mapping.compressed_address(job.reg, job.warp_id)
                if job.compressed
                else self.mapping.address(job.reg, job.warp_id)
            )
            accepted = self.l1.read(
                addr, lambda src, b=bank_id, j=job: self._l1_arrived(b, j, src)
            )
            if accepted:
                self.counters.inc("l1_preload_req")
                job.stage = "wait"
                # The request is in the memory system (MSHR); free the bank
                # queue so later preloads are not head-of-line blocked.
                queue.popleft()
                self._preload_pending -= 1
                if not queue:
                    self._active_banks.discard(bank_id)
            return

    def _l1_arrived(self, bank_id: int, job: _PreloadJob, src: str) -> None:
        if job.compressed:
            victim = self.compressor.install_line(job.reg, job.warp_id)
            if victim is not None:
                self._line_store_q.append(victim)
        source = "l1" if src == "l1" else "l2dram"
        self._allocate_and_finish(bank_id, job, source)

    def _allocate_and_finish(self, bank_id: int, job: _PreloadJob, source: str) -> None:
        bank = self.banks[bank_id]
        key = (job.warp_id, job.reg)
        _, victim = bank.allocate(key)
        if victim is not None:
            self._queue_eviction(victim)
        entry = bank.entry(key)
        if entry is not None and source in ("l1", "l2dram") and not job.compressed:
            entry.has_l1_copy = True
            job.l1_copy = True
        self._finish_preload(bank_id, job, source)

    def _finish_preload(self, bank_id: int, job: _PreloadJob, source: str) -> None:
        queue = self._preload_q[bank_id]
        if queue and queue[0] is job:
            queue.popleft()
            self._preload_pending -= 1
        elif job in queue:  # defensive; waiting jobs were already dequeued
            queue.remove(job)
            self._preload_pending -= 1
        if not queue:
            self._active_banks.discard(bank_id)
        self.counters.inc(self._c_preload_src[source])
        self.counters.inc("preloads")
        if job.invalidate:
            # Invalidating read: the memory copy dies with this preload.
            # The compressor bit clears for free; an L1 request is only
            # needed when an uncompressed L1 copy actually exists.
            self.compressor.invalidate(job.reg, job.warp_id)
            self._materialized.discard((job.warp_id, job.reg))
            if job.l1_copy:
                self.enqueue_invalidate(job.warp_id, job.reg)
                entry = self.banks[bank_id].entry((job.warp_id, job.reg))
                if entry is not None:
                    entry.has_l1_copy = False
        self.on_preload_done(job.warp_id, source)

    # -- eviction pipeline -------------------------------------------------------------------

    def _queue_eviction(self, key: Key) -> None:
        value = self.value_of(key[0], key[1])
        self._materialized.add(key)
        self._evict_q.append((key, value))

    def _pump_evictions(self) -> None:
        if not self._evict_q:
            return
        (warp_id, reg), value = self._evict_q[0]
        if self.compressor.enabled:
            if not self.compressor.port_free:
                return
            compressed, victim = self.compressor.try_compress(reg, warp_id, value)
            if compressed:
                self._evict_q.popleft()
                if victim is not None:
                    self._line_store_q.append(victim)
                return
        # Incompressible: full line store to L1.
        if self.l1.write(self.mapping.address(reg, warp_id)):
            self.counters.inc("l1_evict_store")
            self._evict_q.popleft()

    def _pump_line_stores(self) -> None:
        if not self._line_store_q:
            return
        addr = self._line_store_q[0]
        if self.l1.write(addr):
            self.counters.inc("l1_compressed_store")
            self._line_store_q.popleft()

    def _pump_invalidations(self) -> None:
        if not self._inval_q:
            return
        warp_id, reg = self._inval_q[0]
        if self.l1.invalidate(self.mapping.address(reg, warp_id)):
            self.counters.inc("l1_inval_req")
            self.compressor.invalidate(reg, warp_id)
            self._inval_q.popleft()

    # -- capacity queries (for the CM) -----------------------------------------------------------

    def reservable(self, rotated_usage: List[int], reserved: List[int]) -> bool:
        """Can a region with this rotated usage be reserved on top of the
        CM's current per-bank reservations?"""
        for bank_id, need in enumerate(rotated_usage):
            if reserved[bank_id] + need > self.banks[bank_id].capacity:
                return False
        return True
