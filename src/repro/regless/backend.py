"""RegLess as an :class:`~repro.regfile.base.OperandStorage` backend.

One instance per shard wires together the capacity manager, the operand
staging unit and the compressor (Figure 8), and translates the simulator's
issue/write-back events into the compiler-annotation actions:

* at issue: OSU reads for sources, entry reservation for destinations,
  ``erase``/``evict`` annotations attached to last *reads*;
* at write-back: OSU write (dirty), ``erase_on_write``/``evict_on_write``
  annotations, drain-completion checks;
* at region start: metadata instruction slots (section 5.4);
* at EXIT: all the warp's entries are dropped.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..compiler.pipeline import CompiledKernel
from ..isa.instructions import Instruction
from ..regfile.base import OperandStorage
from ..sim.values import LaneValues, ZERO
from ..sim.warp import Warp
from .capacity import CapacityManager, WarpState
from .compressor import Compressor
from .config import ReglessConfig
from .mapping import RegisterMapping
from .osu import OperandStagingUnit

__all__ = ["ReglessStorage"]


class ReglessStorage(OperandStorage):
    """The RegLess operand-staging backend for one shard."""

    name = "regless"

    #: context/region transitions for a live warp flow only through that
    #: warp's own issues/writebacks/exit or a CM ``notify_wake`` (preload
    #: completion, activation), so cached ready-warp classifications stay
    #: valid between events — cohort batching is sound.  The per-cycle
    #: preloading/OSU-port arbitration lives in *parked* bins, which the
    #: batched account refreshes every cycle like the scalar pass.
    lockstep_pure = True

    def __init__(self, compiled: CompiledKernel, config: Optional[ReglessConfig] = None):
        super().__init__()
        self.compiled = compiled
        self.rcfg = config or ReglessConfig()
        self.osu: Optional[OperandStagingUnit] = None
        self.cm: Optional[CapacityManager] = None
        self._warp_by_id: Dict[int, Warp] = {}

    # -- wiring --------------------------------------------------------------

    def attach(self, shard) -> None:
        super().attach(shard)
        sm = shard.sm
        cfg = sm.config
        self._warp_by_id = {w.wid: w for w in shard.warps}
        mapping = RegisterMapping(
            n_warps=cfg.warps_per_sm * cfg.n_sms,
            n_regs=max(1, self.compiled.kernel.num_regs),
            line_bytes=cfg.line_bytes,
        )
        # Components emit into hierarchical metric scopes
        # (``sm0.shard1.cm`` and friends); the registry mirrors every
        # increment into the flat legacy counters under the old names.
        metrics = getattr(sm.gpu, "metrics", None)

        def sink(component: str):
            if metrics is None:  # standalone construction in unit tests
                return sm.counters
            return metrics.scope(
                f"sm{sm.sm_id}.shard{shard.shard_id}.{component}"
            )

        compressor = Compressor(
            sink("compressor"),
            mapping,
            cache_lines=self.rcfg.compressor_cache_lines,
            enabled=self.rcfg.compressor_enabled,
        )
        self.osu = OperandStagingUnit(
            self.rcfg,
            sink("osu"),
            sm.wheel,
            sm.l1,
            compressor,
            mapping,
            value_of=self._value_of,
            on_preload_done=self._on_preload_done,
        )
        self.cm = CapacityManager(
            self.rcfg, self.compiled, sink("cm"), self.osu, shard.warps
        )
        # Admission progress (INACTIVE→PRELOADING→ACTIVE) re-admits parked
        # warps to the shard's ready set.
        self.cm.wake = self.notify_wake
        self._wheel = sm.wheel

        # Per-pc annotation tables, flattened to register-index tuples so
        # the issue/write-back hooks don't re-resolve region + dict lookups
        # per dynamic instruction.  pcs outside any region keep empty
        # actions (they can never issue under RegLess anyway).
        compiled = self.compiled
        n = compiled.kernel.num_instructions
        erase_i, evict_i, erase_w, evict_w, last = [], [], [], [], []
        for pc in range(n):
            try:
                ann = compiled.annotations_of_pc(pc)
                is_last = compiled.is_region_end(pc)
            except KeyError:
                ann, is_last = None, False
            if ann is None:
                erase_i.append(())
                evict_i.append(())
                erase_w.append(())
                evict_w.append(())
            else:
                erase_i.append(tuple(r.index for r in ann.erase_at.get(pc, ())))
                evict_i.append(tuple(r.index for r in ann.evict_at.get(pc, ())))
                erase_w.append(
                    tuple(r.index for r in ann.erase_on_write.get(pc, ()))
                )
                evict_w.append(
                    tuple(r.index for r in ann.evict_on_write.get(pc, ()))
                )
            last.append(is_last)
        self._pc_erase = erase_i
        self._pc_evict = evict_i
        self._pc_erase_w = erase_w
        self._pc_evict_w = evict_w
        # can_issue guarantees the active region contains pc, and regions
        # partition pcs — so "last pc of the warp's active region" is the
        # static "last pc of the region owning pc".
        self._pc_region_last = last

    def _value_of(self, warp_id: int, reg: int) -> LaneValues:
        warp = self._warp_by_id.get(warp_id)
        if warp is None:
            return ZERO
        return warp.regs.get(reg, ZERO)

    def _on_preload_done(self, warp_id: int, source: str) -> None:
        assert self.cm is not None
        self.cm.on_preload_done(warp_id, source)

    # -- issue-path hooks ---------------------------------------------------------

    def can_issue(self, warp: Warp, pc: int, insn: Instruction) -> bool:
        assert self.cm is not None
        return self.cm.can_issue(warp, pc)

    def stall_reason(self, warp: Warp, pc: int,
                     insn: Instruction) -> Optional[str]:
        """Pure classification of a CM-blocked warp (stall attribution):
        region not staged, preloads in flight, or preload head-of-line
        blocked at the L1 request port."""
        assert self.cm is not None and self.osu is not None
        ctx = self.cm.ctx[warp.wid]
        state = ctx.state
        if state is WarpState.ACTIVE:
            region = ctx.region
            if region is not None and region.contains_pc(pc):
                return None
            return "cm_inactive"
        if state is WarpState.PRELOADING:
            if self.osu.preload_blocked_at_l1(warp.wid):
                return "osu_port"
            return "cm_preloading"
        # INACTIVE, DRAINING, or FINISHED-but-not-yet-exited: the warp
        # waits for (re)admission either way.
        return "cm_inactive"

    def metadata_slots(self, warp: Warp, pc: int) -> int:
        assert self.cm is not None
        return self.cm.consume_metadata(warp, pc)

    def on_issue(self, warp: Warp, pc: int, insn: Instruction) -> None:
        osu = self.osu
        wid = warp.wid
        for i in insn.src_idx:
            osu.read(wid, i)
        for i in insn.dst_idx:
            osu.reserve_write(wid, i)

        for i in self._pc_erase[pc]:
            osu.erase(wid, i)
        for i in self._pc_evict[pc]:
            osu.mark_evictable(wid, i)

        if self._pc_region_last[pc] and not warp.exited:
            self.cm.on_last_issue(warp, self._wheel.now)

    def on_writeback(self, warp: Warp, pc: int, insn: Instruction) -> None:
        osu = self.osu
        wid = warp.wid
        for i in insn.dst_idx:
            osu.complete_write(wid, i)
        for i in self._pc_erase_w[pc]:
            osu.erase(wid, i)
        for i in self._pc_evict_w[pc]:
            osu.mark_evictable(wid, i)
        self.cm.on_writeback(warp, self._wheel.now)

    def on_warp_exit(self, warp: Warp) -> None:
        assert self.osu is not None and self.cm is not None
        self.cm.on_warp_exit(warp, self.now)
        self.osu.erase_warp(warp.wid, self.compiled.kernel.num_regs)

    # -- background ------------------------------------------------------------------

    def cycle(self) -> None:
        assert self.osu is not None and self.cm is not None
        now = self.now
        if self.cm.needs_cycle(now):
            self.cm.cycle(now)
        if self.osu.work_pending:
            self.osu.cycle()

    def has_work(self, now: int) -> bool:
        return self.osu.work_pending or self.cm.needs_cycle(now)

    def on_fast_forward(self, cycles: int) -> None:
        self.cm.on_fast_forward(cycles)

    @property
    def idle(self) -> bool:
        assert self.osu is not None and self.cm is not None
        return self.osu.idle and self.cm.idle

    def finalize(self) -> None:
        assert self.cm is not None
        self.counters.inc("region_cycles_total", self.cm.region_cycles_total)
        self.counters.inc("region_executions", self.cm.region_executions)
