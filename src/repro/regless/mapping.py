"""Register-to-memory address mapping (paper section 5.2.3).

Registers spill to a global-memory buffer allocated at first kernel launch.
The layout keeps all warps' copies of the same architectural register
sequential — warps tend to touch the same register numbers around the same
time, which minimizes L1 set conflicts:

    addr(R, w) = reg_base + (R * n_warps + w) * 128

Compressed registers live in a separate adjacent space where one 128-byte
line holds 15 compressed registers (section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RegisterMapping", "REGS_PER_COMPRESSED_LINE"]

#: 15 compressed registers (8 B value + 3-bit state each) per 128-byte line.
REGS_PER_COMPRESSED_LINE = 15


@dataclass(frozen=True)
class RegisterMapping:
    """Address computation for spilled registers."""

    n_warps: int
    n_regs: int
    line_bytes: int = 128
    reg_base: int = 0x8000_0000

    @property
    def uncompressed_bytes(self) -> int:
        return self.n_regs * self.n_warps * self.line_bytes

    @property
    def compressed_base(self) -> int:
        return self.reg_base + self.uncompressed_bytes

    def slot(self, reg_index: int, warp_id: int) -> int:
        """Linear slot number of (register, warp)."""
        if not 0 <= reg_index < self.n_regs:
            raise ValueError(f"register index {reg_index} out of range")
        return reg_index * self.n_warps + (warp_id % self.n_warps)

    def address(self, reg_index: int, warp_id: int) -> int:
        """Uncompressed line address of one warp-register."""
        return self.reg_base + self.slot(reg_index, warp_id) * self.line_bytes

    def compressed_address(self, reg_index: int, warp_id: int) -> int:
        """Line address of the compressed line holding this register."""
        line = self.slot(reg_index, warp_id) // REGS_PER_COMPRESSED_LINE
        return self.compressed_base + line * self.line_bytes
