"""RegLess hardware parameters.

The paper's design point is 512 OSU entries per SM (25% of the baseline
2048-entry register file), split across 4 shards (one per warp scheduler) of
8 banks each: 512 / 4 / 8 = 16 lines per bank.  Figure 13 sweeps capacities
128..1024.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ReglessConfig"]


@dataclass(frozen=True)
class ReglessConfig:
    """Configuration of one SM's RegLess hardware."""

    #: total OSU entries per SM (one entry = one 128-byte warp-register).
    osu_entries_per_sm: int = 512
    shards_per_sm: int = 4
    banks_per_shard: int = 8
    #: compressed-register cache lines per compressor (paper: 48 per SM).
    compressor_cache_lines: int = 12
    #: enable the pattern compressor (Figure 16's no-compressor ablation).
    compressor_enabled: bool = True
    #: extra pipeline cycles for a preload that misses the OSU (bit-vector
    #: check), and for a compressed-pattern expansion (tag + decompress).
    bitvec_latency: int = 1
    decompress_latency: int = 2
    #: emergency activation threshold: if a shard makes no progress for this
    #: many cycles the top warp is activated with over-reservation (safety
    #: valve; counted in ``osu_overflow``).
    emergency_cycles: int = 4000
    #: ablation: activate warps FIFO instead of most-recent-first.
    warp_stack_lifo: bool = True
    #: anti-starvation: when some warp has waited this long for activation,
    #: the CM activates the longest-waiting warp instead of the stack top.
    activation_aging_cycles: int = 300
    #: ablation: eviction priority free -> clean -> dirty (paper) vs random.
    ordered_eviction: bool = True

    @property
    def entries_per_shard(self) -> int:
        return self.osu_entries_per_sm // self.shards_per_sm

    @property
    def lines_per_bank(self) -> int:
        return self.entries_per_shard // self.banks_per_shard

    def with_(self, **kwargs) -> "ReglessConfig":
        return replace(self, **kwargs)
