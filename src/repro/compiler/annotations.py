"""Register-lifetime annotations (paper sections 4.3–4.4, Figure 6).

For every region the compiler emits:

* **preloads** — the region's input registers, each optionally flagged as an
  *invalidating read* when the preload is the last use of the memory copy
  (the register dies inside the region);
* **cache invalidations** — cross-region registers known dead at the start
  of the region due to control flow, placed at a postdominator of all the
  live range's definitions and death points;
* **bank usage** — the per-bank OSU capacity the region needs;
* per-PC **erase** marks — last use of an interior (or dying input)
  register: the OSU entry is recycled immediately;
* per-PC **evict** marks — last in-region use of an input/output that
  outlives the region: the entry becomes *eligible* for eviction to L1.

Erase/evict marks attached to a PC whose reference is a *write* take effect
at write-back (the OSU sets evictable+dirty as the value arrives); those are
listed separately in ``evict_on_write`` / ``erase_on_write``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.kernel import Kernel
from ..isa.registers import Reg
from .domtree import postdominator_tree
from .liveness import Liveness
from .metadata import n_metadata_slots
from .regions import Region, RegionConfig

__all__ = ["Preload", "RegionAnnotations", "annotate_regions"]


@dataclass(frozen=True)
class Preload:
    """One input register to stage before the region starts."""

    reg: Reg
    #: Invalidating read: the memory copy is dead once staged (Figure 6).
    invalidate: bool = False


@dataclass
class RegionAnnotations:
    """All compiler annotations attached to one region."""

    rid: int
    preloads: Tuple[Preload, ...]
    cache_invalidates: Tuple[Reg, ...]
    bank_usage: Tuple[int, ...]
    #: pc -> interior/dying registers erased after their last *read* at pc.
    erase_at: Dict[int, Tuple[Reg, ...]] = field(default_factory=dict)
    #: pc -> cross-region registers eligible for eviction after a read at pc.
    evict_at: Dict[int, Tuple[Reg, ...]] = field(default_factory=dict)
    #: pc -> registers whose last reference is the write at pc; the OSU marks
    #: them erased as the write-back lands.
    erase_on_write: Dict[int, Tuple[Reg, ...]] = field(default_factory=dict)
    #: pc -> registers whose last reference is the write at pc; marked
    #: evictable+dirty at write-back.
    evict_on_write: Dict[int, Tuple[Reg, ...]] = field(default_factory=dict)
    n_metadata_insns: int = 0

    @property
    def n_preloads(self) -> int:
        return len(self.preloads)


def _metadata_instruction_count(
    n_insns: int, n_preloads: int, n_invalidates: int
) -> int:
    """Metadata overhead in instruction slots (paper section 5.4); the
    formula lives in :func:`repro.compiler.metadata.n_metadata_slots`,
    mirroring the word-by-word encoder exactly."""
    return n_metadata_slots(n_insns, n_preloads + n_invalidates)


def _last_references(
    kernel: Kernel, region: Region
) -> Tuple[Dict[Reg, int], Set[Reg]]:
    """Last referencing PC per register, and whether that reference writes."""
    last: Dict[Reg, int] = {}
    write_last: Set[Reg] = set()
    for pc in range(region.start_pc, region.end_pc):
        insn = kernel.insn_at(pc)
        for r in insn.reg_srcs:
            last[r] = pc
            write_last.discard(r)
        for r in insn.reg_dsts:
            last[r] = pc
            write_last.add(r)
    return last, write_last


def _place_cache_invalidations(
    kernel: Kernel,
    liveness: Liveness,
    regions: List[Region],
) -> Dict[int, List[Reg]]:
    """Map region id -> registers to cache-invalidate at region start.

    For each cross-region register (one that is an input or output of some
    region, hence may reside in the L1), find the block that postdominates
    every block referencing it where the register is no longer live-in, and
    attach the invalidation to the first region of that block.
    """
    pdom = postdominator_tree(kernel)
    cross: Set[Reg] = set()
    for region in regions:
        cross |= region.inputs | region.outputs

    # Blocks referencing each cross-region register.
    ref_blocks: Dict[Reg, Set[str]] = {r: set() for r in cross}
    for pc, label, insn in kernel.iter_pcs():
        for r in insn.regs:
            if r in cross:
                ref_blocks[r].add(label)

    first_region_of_block: Dict[str, int] = {}
    for region in regions:
        if region.block not in first_region_of_block:
            first_region_of_block[region.block] = region.rid
        else:
            first_region_of_block[region.block] = min(
                first_region_of_block[region.block], region.rid
            )

    result: Dict[int, List[Reg]] = {}
    max_ref_index = {
        reg: max(kernel.block_index(b) for b in blocks)
        for reg, blocks in ref_blocks.items()
        if blocks
    }
    for reg, blocks in ref_blocks.items():
        target = _common_postdominator(kernel, pdom, blocks)
        if target is None:
            continue
        # Walk down the postdominator chain until the register is dead AND
        # the point is past every reference in layout order — an earlier
        # point would sit inside a loop and re-fire the (safe but wasteful)
        # invalidation every iteration.
        while target is not None:
            past_refs = (
                target in {b.label for b in kernel.blocks}
                and kernel.block_index(target) >= max_ref_index[reg]
            )
            dead = reg not in liveness.live_in.get(target, frozenset())
            if dead and past_refs:
                break
            target = pdom.idom(target)
        if target is None or target not in first_region_of_block:
            continue
        result.setdefault(first_region_of_block[target], []).append(reg)
    return result


def _common_postdominator(
    kernel: Kernel, pdom, blocks: Set[str]
) -> Optional[str]:
    """Nearest real block postdominating every block in ``blocks``."""
    common: Optional[FrozenSet[str]] = None
    for b in blocks:
        if b not in pdom:
            return None
        sets = pdom.dominators(b)
        common = sets if common is None else (common & sets)
    if not common:
        return None
    # Choose the nearest: the element of `common` with the largest
    # postdominator set minus... walk from any block up the chain.
    start = next(iter(blocks))
    node: Optional[str] = start
    while node is not None:
        if node in common and node != start:
            break
        node = pdom.idom(node)
    candidate = node
    if candidate is None and start in common and len(blocks) == 1:
        candidate = start
    # Skip the virtual exit node.
    if candidate is not None and candidate not in {
        b.label for b in kernel.blocks
    }:
        candidate = pdom.idom(candidate) if candidate in pdom else None
    return candidate


def annotate_regions(
    kernel: Kernel,
    liveness: Liveness,
    regions: List[Region],
    config: Optional[RegionConfig] = None,
) -> List[RegionAnnotations]:
    """Produce :class:`RegionAnnotations` for every region, in rid order."""
    config = config or RegionConfig()
    invalidations = _place_cache_invalidations(kernel, liveness, regions)

    annotated: List[RegionAnnotations] = []
    for region in regions:
        last, write_last = _last_references(kernel, region)
        live_after_region = (
            liveness.live_after[region.end_pc - 1]
            if region.end_pc > region.start_pc
            else frozenset()
        )

        preloads = tuple(
            Preload(reg, invalidate=reg not in live_after_region)
            for reg in sorted(region.inputs)
        )

        erase_at: Dict[int, List[Reg]] = {}
        evict_at: Dict[int, List[Reg]] = {}
        erase_on_write: Dict[int, List[Reg]] = {}
        evict_on_write: Dict[int, List[Reg]] = {}
        for reg, pc in last.items():
            dies_here = reg not in live_after_region
            is_write = reg in write_last
            if dies_here:
                bucket = erase_on_write if is_write else erase_at
            else:
                bucket = evict_on_write if is_write else evict_at
            bucket.setdefault(pc, []).append(reg)

        cache_inv = tuple(sorted(invalidations.get(region.rid, [])))
        n_meta = _metadata_instruction_count(
            region.num_insns, len(preloads), len(cache_inv)
        )
        annotated.append(
            RegionAnnotations(
                rid=region.rid,
                preloads=preloads,
                cache_invalidates=cache_inv,
                bank_usage=region.bank_usage,
                erase_at={pc: tuple(sorted(v)) for pc, v in erase_at.items()},
                evict_at={pc: tuple(sorted(v)) for pc, v in evict_at.items()},
                erase_on_write={
                    pc: tuple(sorted(v)) for pc, v in erase_on_write.items()
                },
                evict_on_write={
                    pc: tuple(sorted(v)) for pc, v in evict_on_write.items()
                },
                n_metadata_insns=n_meta,
            )
        )
    return annotated
