"""Region creation — Algorithm 1 of the paper (section 4.1–4.2).

A *region* is a contiguous PC range inside one basic block, scheduled
atomically by the RegLess hardware.  The compiler chooses region boundaries
to (a) keep each region's register footprint within the operand staging
unit's per-region and per-bank limits, (b) separate global loads from their
first uses so warps never stall inside a region, and (c) cut at the points
with the fewest live registers so that as few values as possible cross
region boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..isa.kernel import Kernel
from ..isa.registers import Reg
from .liveness import Liveness

__all__ = ["RegionConfig", "Region", "RegionStats", "create_regions", "region_stats"]


@dataclass(frozen=True)
class RegionConfig:
    """Compiler-side limits mirroring the OSU hardware geometry."""

    #: Number of OSU banks; registers map to bank ``reg.index % banks``
    #: (rotated by warp id at run time, which preserves per-bank counts).
    banks: int = 8
    #: Cap on a region's concurrent register footprint, so one region cannot
    #: monopolize the staging unit (IsValid line 18).
    max_regs_per_region: int = 32
    #: Cap on the footprint within any single bank (IsValid line 20).
    max_regs_per_bank: int = 8
    #: Minimum region length targeted by FindSplitPoint (paper: 48 bytes =
    #: 6 eight-byte instructions).
    min_region_insns: int = 6
    #: Forbid a global load and its first use in the same region
    #: (IsValid line 22).
    split_load_use: bool = True
    #: Ablation switch: when False, FindSplitPoint ignores liveness seams
    #: and splits at the upper bound.
    split_at_seams: bool = True

    def bank_of(self, reg: Reg) -> int:
        return reg.index % self.banks


@dataclass(frozen=True)
class RegionStats:
    """Register-footprint statistics of a candidate PC range."""

    inputs: FrozenSet[Reg]
    outputs: FrozenSet[Reg]
    interior: FrozenSet[Reg]
    max_live: int
    bank_usage: Tuple[int, ...]

    @property
    def boundary_regs(self) -> int:
        return len(self.inputs) + len(self.outputs)

    @property
    def all_regs(self) -> FrozenSet[Reg]:
        return self.inputs | self.outputs | self.interior


@dataclass
class Region:
    """One compiled region: a PC range plus its register statistics."""

    rid: int
    block: str
    start_pc: int
    end_pc: int  # exclusive
    stats: RegionStats = field(repr=False)

    @property
    def num_insns(self) -> int:
        return self.end_pc - self.start_pc

    @property
    def inputs(self) -> FrozenSet[Reg]:
        return self.stats.inputs

    @property
    def outputs(self) -> FrozenSet[Reg]:
        return self.stats.outputs

    @property
    def interior(self) -> FrozenSet[Reg]:
        return self.stats.interior

    @property
    def max_live(self) -> int:
        return self.stats.max_live

    @property
    def bank_usage(self) -> Tuple[int, ...]:
        return self.stats.bank_usage

    def contains_pc(self, pc: int) -> bool:
        return self.start_pc <= pc < self.end_pc

    def pcs(self) -> range:
        """The region's straight-line pc sequence (start inclusive,
        end exclusive)."""
        return range(self.start_pc, self.end_pc)

    def __repr__(self) -> str:
        return (
            f"Region({self.rid}, {self.block}, pc=[{self.start_pc},"
            f"{self.end_pc}), in={len(self.inputs)}, out={len(self.outputs)},"
            f" interior={len(self.interior)}, max_live={self.max_live})"
        )


def region_stats(
    kernel: Kernel,
    liveness: Liveness,
    start: int,
    end: int,
    config: RegionConfig,
) -> RegionStats:
    """Compute the register footprint of the PC range ``[start, end)``.

    * ``inputs`` — registers whose value must be staged before the region
      runs: live-in registers read in the region, plus registers with a soft
      definition in the region (the unwritten lanes' old values must be
      preserved — paper section 4.4).
    * ``outputs`` — registers written in the region and live after it.
    * ``interior`` — everything else referenced: whole lifetime inside.
    * ``max_live`` / ``bank_usage`` — peak concurrent OSU footprint, total
      and per bank, from a forward allocation scan (inputs are all staged at
      entry; an entry is released after the register's last in-region use
      unless it is an output, which stays until region end).
    """
    live_in_region = liveness.live_before[start] if start < end else frozenset()
    reads: set = set()
    defs: set = set()
    soft_in_region: set = set()
    last_use: Dict[Reg, int] = {}
    for pc in range(start, end):
        insn = kernel.insn_at(pc)
        for r in insn.reg_srcs:
            if r not in defs or r in live_in_region:
                # Read of a value that may originate outside the region.
                if r not in defs:
                    reads.add(r)
            last_use[r] = pc
        for r in insn.reg_dsts:
            defs.add(r)
            last_use[r] = pc
            if liveness.is_soft_def(pc, r):
                soft_in_region.add(r)

    inputs = frozenset((reads & live_in_region) | (soft_in_region & live_in_region))
    live_after_region = liveness.live_after[end - 1] if end > start else frozenset()
    outputs = frozenset(defs & live_after_region)
    interior = frozenset((reads | defs) - inputs - outputs)

    # Forward allocation scan for peak footprint.
    allocated = set(inputs)
    max_live = len(allocated)
    bank_peak = [0] * config.banks
    bank_count = [0] * config.banks
    for r in allocated:
        bank_count[config.bank_of(r)] += 1
    for b in range(config.banks):
        bank_peak[b] = bank_count[b]

    def _release(reg: Reg) -> None:
        allocated.discard(reg)
        bank_count[config.bank_of(reg)] -= 1

    def _acquire(reg: Reg) -> None:
        if reg not in allocated:
            allocated.add(reg)
            b = config.bank_of(reg)
            bank_count[b] += 1
            bank_peak[b] = max(bank_peak[b], bank_count[b])

    for pc in range(start, end):
        insn = kernel.insn_at(pc)
        for r in insn.reg_dsts:
            _acquire(r)
        max_live = max(max_live, len(allocated))
        for r in set(insn.regs):
            if last_use.get(r) == pc and r not in outputs:
                _release(r)

    return RegionStats(
        inputs=inputs,
        outputs=outputs,
        interior=interior,
        max_live=max_live,
        bank_usage=tuple(bank_peak),
    )


# ---------------------------------------------------------------------------
# Algorithm 1
# ---------------------------------------------------------------------------


def _load_use_pairs(kernel: Kernel, start: int, end: int) -> List[Tuple[int, int]]:
    """(load_pc, first_use_pc) pairs for global loads inside ``[start, end)``."""
    pairs: List[Tuple[int, int]] = []
    for pc in range(start, end):
        insn = kernel.insn_at(pc)
        if not insn.opcode.is_global_load:
            continue
        for dst in insn.reg_dsts:
            for use_pc in range(pc + 1, end):
                user = kernel.insn_at(use_pc)
                if dst in user.reg_srcs:
                    pairs.append((pc, use_pc))
                    break
                if dst in user.reg_dsts:
                    break  # redefined before use
    return pairs


def _contains_multi_insn_barrier(kernel: Kernel, start: int, end: int) -> bool:
    """True when the range holds a barrier plus other instructions.

    A warp waiting at a barrier keeps its region's OSU reservation, so a
    barrier must sit in its own (register-free) region or every warp of a
    CTA would hold live capacity while waiting — a capacity deadlock.
    """
    if end - start <= 1:
        return False
    for pc in range(start, end):
        if kernel.insn_at(pc).opcode.info.is_barrier:
            return True
    return False


def _is_valid(
    kernel: Kernel,
    liveness: Liveness,
    start: int,
    end: int,
    config: RegionConfig,
) -> bool:
    """IsValid from Algorithm 1 (plus the barrier-isolation rule)."""
    stats = region_stats(kernel, liveness, start, end, config)
    if stats.max_live > config.max_regs_per_region:
        return False
    if max(stats.bank_usage, default=0) > config.max_regs_per_bank:
        return False
    if config.split_load_use and _load_use_pairs(kernel, start, end):
        return False
    if _contains_multi_insn_barrier(kernel, start, end):
        return False
    return True


def _find_split_point(
    kernel: Kernel,
    liveness: Liveness,
    start: int,
    end: int,
    config: RegionConfig,
) -> int:
    """FindSplitPoint from Algorithm 1; returns the split PC.

    The first region becomes ``[start, split)`` and the second
    ``[split, end)``.
    """
    # upper bound: largest split such that the first region stays valid.
    upper = start + 1
    for split in range(start + 1, end):
        if _is_valid(kernel, liveness, start, split, config):
            upper = split
        else:
            break

    # lower bound: the split that separates the most global loads from their
    # first uses (minimizes load/use pairs left inside either new region).
    lower = upper
    if config.split_load_use:
        pairs = _load_use_pairs(kernel, start, end)
        if pairs:
            best_cost: Optional[int] = None
            for split in range(start + 1, upper + 1):
                cost = sum(
                    1 for ld, use in pairs if not (ld < split <= use)
                )
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    lower = split

    lower = min(max(start + config.min_region_insns, lower), upper)

    if not config.split_at_seams:
        return upper

    # choose the split in [lower, upper] producing the fewest combined
    # input+output registers in the two new regions (the liveness "seam").
    best_split = lower
    best_boundary: Optional[int] = None
    for split in range(lower, upper + 1):
        first = region_stats(kernel, liveness, start, split, config)
        second = region_stats(kernel, liveness, split, end, config)
        boundary = first.boundary_regs + second.boundary_regs
        if best_boundary is None or boundary < best_boundary:
            best_boundary = boundary
            best_split = split
    return best_split


def create_regions(
    kernel: Kernel,
    liveness: Liveness,
    config: Optional[RegionConfig] = None,
) -> List[Region]:
    """CreateRegions from Algorithm 1.

    Starts from one region per basic block and repeatedly splits invalid
    regions.  The first region of each split is guaranteed valid; the second
    re-enters the worklist.  Returned regions are sorted by start PC and
    tile every instruction of the kernel exactly once.
    """
    config = config or RegionConfig()
    worklist: List[Tuple[str, int, int]] = []
    for block in kernel.blocks:
        start = kernel.block_start_pc(block.label)
        end = kernel.block_end_pc(block.label)
        if end > start:
            worklist.append((block.label, start, end))

    accepted: List[Tuple[str, int, int]] = []
    while worklist:
        label, start, end = worklist.pop(0)
        if _is_valid(kernel, liveness, start, end, config):
            accepted.append((label, start, end))
            continue
        split = _find_split_point(kernel, liveness, start, end, config)
        if split <= start or split >= end:
            # Cannot split further (single oversized instruction footprint);
            # accept as-is — the hardware handles it with a degraded limit.
            accepted.append((label, start, end))
            continue
        accepted.append((label, start, split))
        worklist.insert(0, (label, split, end))

    accepted.sort(key=lambda t: t[1])
    regions = []
    for rid, (label, start, end) in enumerate(accepted):
        stats = region_stats(kernel, liveness, start, end, config)
        regions.append(Region(rid, label, start, end, stats))
    return regions
