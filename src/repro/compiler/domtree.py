"""Dominator and postdominator trees over kernel CFGs.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm").  Postdominators are computed by running the same
algorithm on the reversed CFG, with a virtual exit node when the kernel has
several exit blocks.

These trees back three consumers:

* Algorithm 2 of the paper (soft-definition detection) needs dominator and
  postdominator *sets*.
* Cache-invalidation placement needs postdominators of definitions and death
  points (paper section 4.4).
* The simulator's SIMT reconvergence stack uses immediate postdominators of
  divergent branches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..isa.kernel import Kernel

__all__ = ["DomTree", "dominator_tree", "postdominator_tree", "VIRTUAL_EXIT"]

#: Label of the virtual exit node used when a kernel has multiple exits.
VIRTUAL_EXIT = "<exit>"


class DomTree:
    """An (post)dominator tree over basic-block labels."""

    def __init__(self, root: str, idom: Dict[str, Optional[str]]):
        self.root = root
        self._idom = idom
        self._sets: Dict[str, FrozenSet[str]] = {}

    def idom(self, label: str) -> Optional[str]:
        """Immediate dominator of ``label`` (None for the root)."""
        return self._idom.get(label)

    def __contains__(self, label: str) -> bool:
        return label in self._idom

    @property
    def nodes(self) -> List[str]:
        return list(self._idom)

    def dominators(self, label: str) -> FrozenSet[str]:
        """All dominators of ``label``, including itself."""
        cached = self._sets.get(label)
        if cached is not None:
            return cached
        chain = []
        node: Optional[str] = label
        while node is not None:
            chain.append(node)
            if node == self.root:
                break
            node = self._idom[node]
        result = frozenset(chain)
        self._sets[label] = result
        return result

    def strict_dominators(self, label: str) -> FrozenSet[str]:
        return self.dominators(label) - {label}

    def dominates(self, a: str, b: str) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        return a in self.dominators(b)

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)


def _reverse_postorder(
    root: str, succs: Dict[str, List[str]]
) -> List[str]:
    """Reverse postorder of the graph reachable from ``root``."""
    order: List[str] = []
    visited = set()
    # Iterative DFS with explicit stack so deep CFGs cannot overflow.
    stack: List[tuple] = [(root, iter(succs.get(root, ())))]
    visited.add(root)
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(succs.get(nxt, ()))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def _compute_idoms(
    root: str, succs: Dict[str, List[str]]
) -> Dict[str, Optional[str]]:
    """Cooper–Harvey–Kennedy dominators for the graph below ``root``."""
    rpo = _reverse_postorder(root, succs)
    index = {label: i for i, label in enumerate(rpo)}
    preds: Dict[str, List[str]] = {label: [] for label in rpo}
    for label in rpo:
        for s in succs.get(label, ()):
            if s in index:
                preds[s].append(label)

    idom: Dict[str, Optional[str]] = {root: root}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == root:
                continue
            candidates = [p for p in preds[label] if p in idom]
            if not candidates:
                continue
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(new, p)
            if idom.get(label) != new:
                idom[label] = new
                changed = True

    idom[root] = None
    return idom


def dominator_tree(kernel: Kernel) -> DomTree:
    """Dominator tree rooted at the kernel entry block."""
    succs = {b.label: kernel.successors(b.label) for b in kernel.blocks}
    return DomTree(kernel.entry, _compute_idoms(kernel.entry, succs))


def postdominator_tree(kernel: Kernel) -> DomTree:
    """Postdominator tree, rooted at a (possibly virtual) exit node.

    Blocks that cannot reach an exit (e.g. provably infinite loops) are
    absent from the tree; callers treat them as having no postdominators.
    """
    exits = kernel.exit_labels
    # Reversed CFG: edges from successor back to block.
    rsuccs: Dict[str, List[str]] = {b.label: [] for b in kernel.blocks}
    for b in kernel.blocks:
        for s in kernel.successors(b.label):
            rsuccs[s].append(b.label)

    if len(exits) == 1:
        root = exits[0]
    else:
        root = VIRTUAL_EXIT
        rsuccs[root] = list(exits)

    idom = _compute_idoms(root, rsuccs)
    if root == VIRTUAL_EXIT:
        # Splice out the virtual node: its children become roots of their
        # own chains ending at VIRTUAL_EXIT; keep it so dominates() works,
        # callers simply never ask about it.
        pass
    return DomTree(root, idom)
