"""Architectural register allocation (the ptxas stage of the paper's flow).

Workload kernels are built SSA-style (every temporary gets a fresh
register), which inflates architectural register counts.  Real kernels are
register-allocated by ptxas before RegLess's compiler runs — and the
*allocated* register count is what sizes baseline occupancy (a 2048-entry
register file holds ``2048 / regs_per_warp`` warps).

This pass renames registers using divergence-aware liveness:

* an interference graph is built from the per-PC live sets (plus
  definition-time interference against live-out values);
* registers that are live-in at kernel entry (thread id, kernel parameters)
  keep their original indices — their launch values are positional;
* remaining registers are greedily colored in order of first definition.

Soft definitions are honoured automatically because they come from the same
liveness analysis: a soft write keeps the old value live, so the two ranges
interfere and never share a register.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..isa.instructions import Instruction
from ..isa.kernel import BasicBlock, Kernel
from ..isa.registers import Reg
from .liveness import analyze_liveness

__all__ = ["allocate_registers", "build_interference"]


def build_interference(kernel: Kernel) -> Dict[Reg, Set[Reg]]:
    """Interference graph over architectural registers."""
    liveness = analyze_liveness(kernel)
    graph: Dict[Reg, Set[Reg]] = {r: set() for r in kernel.registers}

    def link(group) -> None:
        group = list(group)
        for i, a in enumerate(group):
            for b_reg in group[i + 1:]:
                if a != b_reg:
                    graph[a].add(b_reg)
                    graph[b_reg].add(a)

    for pc, _, insn in kernel.iter_pcs():
        link(liveness.live_before[pc])
        # A definition interferes with everything live after it (the def
        # must not clobber values that outlive this instruction).
        after = liveness.live_after[pc]
        for d in insn.reg_dsts:
            for other in after:
                if other != d:
                    graph[d].add(other)
                    graph[other].add(d)
    return graph


def allocate_registers(kernel: Kernel) -> Kernel:
    """Rename registers to a compact set; returns a new kernel."""
    liveness = analyze_liveness(kernel)
    graph = build_interference(kernel)

    pinned = sorted(liveness.live_in.get(kernel.entry, frozenset()))
    mapping: Dict[Reg, int] = {r: r.index for r in pinned}

    # Color in order of first definition (stable, cache-friendly numbering).
    order: List[Reg] = []
    seen: Set[Reg] = set(pinned)
    for pc, _, insn in kernel.iter_pcs():
        for r in insn.reg_dsts:
            if r not in seen:
                seen.add(r)
                order.append(r)
        for r in insn.reg_srcs:
            if r not in seen:  # used but never defined nor live-in: pin
                seen.add(r)
                mapping[r] = r.index

    for reg in order:
        taken = {
            mapping[n] for n in graph.get(reg, ()) if n in mapping
        }
        color = 0
        while color in taken:
            color += 1
        mapping[reg] = color

    def rename(op):
        if isinstance(op, Reg):
            return Reg(mapping.get(op, op.index))
        return op

    blocks = []
    for block in kernel.blocks:
        insns = [
            Instruction(
                opcode=i.opcode,
                dsts=tuple(rename(d) for d in i.dsts),
                srcs=tuple(rename(s) for s in i.srcs),
                guard=i.guard,
                target=i.target,
                tag=i.tag,
            )
            for i in block.instructions
        ]
        blocks.append(BasicBlock(block.label, insns))
    return Kernel(kernel.name, blocks)
