"""End-to-end RegLess compilation: liveness -> regions -> annotations.

:func:`compile_kernel` is the public entry point used by examples, tests,
and the simulator.  The result, :class:`CompiledKernel`, bundles the kernel
with every compiler artifact and provides the PC-indexed lookups the
RegLess hardware model consumes at "run time".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.kernel import Kernel
from .annotations import RegionAnnotations, annotate_regions
from .liveness import Liveness, analyze_liveness
from .metadata import encode_region_metadata
from .regions import Region, RegionConfig, create_regions

__all__ = ["CompiledKernel", "compile_kernel"]


@dataclass
class CompiledKernel:
    """A kernel plus all RegLess compiler artifacts."""

    kernel: Kernel
    liveness: Liveness = field(repr=False)
    regions: List[Region] = field(repr=False)
    annotations: List[RegionAnnotations] = field(repr=False)
    config: RegionConfig = field(repr=False, default_factory=RegionConfig)

    def __post_init__(self) -> None:
        self._region_of_pc: List[int] = [-1] * self.kernel.num_instructions
        for region in self.regions:
            for pc in region.pcs():
                self._region_of_pc[pc] = region.rid
        self._regions_of_block: Dict[str, List[int]] = {}
        for region in self.regions:
            self._regions_of_block.setdefault(region.block, []).append(region.rid)

    # -- lookups --------------------------------------------------------------

    def region_id_of_pc(self, pc: int) -> int:
        """The rid owning ``pc``, or -1 when no region covers it (total
        lookup used by the execution JIT; :meth:`region_of_pc` keeps the
        raising contract for callers that require coverage)."""
        return self._region_of_pc[pc]

    def region_of_pc(self, pc: int) -> Region:
        rid = self._region_of_pc[pc]
        if rid < 0:
            raise KeyError(f"pc {pc} is not covered by any region")
        return self.regions[rid]

    def annotations_of_pc(self, pc: int) -> RegionAnnotations:
        return self.annotations[self.region_of_pc(pc).rid]

    def regions_of_block(self, label: str) -> List[Region]:
        return [self.regions[rid] for rid in self._regions_of_block.get(label, [])]

    def is_region_start(self, pc: int) -> bool:
        return self.region_of_pc(pc).start_pc == pc

    def is_region_end(self, pc: int) -> bool:
        return self.region_of_pc(pc).end_pc == pc + 1

    # -- statistics (Figure 19 / Table 2 inputs) --------------------------------

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    def mean_insns_per_region(self) -> float:
        if not self.regions:
            return 0.0
        return sum(r.num_insns for r in self.regions) / len(self.regions)

    def mean_preloads_per_region(self) -> float:
        if not self.annotations:
            return 0.0
        return sum(a.n_preloads for a in self.annotations) / len(self.annotations)

    def mean_live_per_region(self) -> float:
        if not self.regions:
            return 0.0
        return sum(r.max_live for r in self.regions) / len(self.regions)

    def std_live_per_region(self) -> float:
        n = len(self.regions)
        if n == 0:
            return 0.0
        mean = self.mean_live_per_region()
        var = sum((r.max_live - mean) ** 2 for r in self.regions) / n
        return var ** 0.5

    def total_metadata_insns(self) -> int:
        return sum(a.n_metadata_insns for a in self.annotations)

    def metadata_bits(self) -> int:
        total = 0
        for region, ann in zip(self.regions, self.annotations):
            words = encode_region_metadata(ann, region.num_insns)
            total += sum(w.bits_used for w in words)
        return total

    def summary(self) -> str:
        """Human-readable compilation summary (used by examples)."""
        lines = [
            f"kernel {self.kernel.name}: {self.kernel.num_instructions} insns, "
            f"{len(self.kernel.blocks)} blocks, {self.kernel.num_regs} regs",
            f"  regions: {self.n_regions} "
            f"(mean {self.mean_insns_per_region():.1f} insns, "
            f"mean live {self.mean_live_per_region():.1f}, "
            f"mean preloads {self.mean_preloads_per_region():.1f})",
            f"  metadata: {self.total_metadata_insns()} extra insn slots",
        ]
        return "\n".join(lines)


def compile_kernel(
    kernel: Kernel, config: Optional[RegionConfig] = None
) -> CompiledKernel:
    """Run the full RegLess compiler pipeline on a kernel."""
    config = config or RegionConfig()
    liveness = analyze_liveness(kernel)
    regions = create_regions(kernel, liveness, config)
    annotations = annotate_regions(kernel, liveness, regions, config)
    return CompiledKernel(
        kernel=kernel,
        liveness=liveness,
        regions=regions,
        annotations=annotations,
        config=config,
    )
