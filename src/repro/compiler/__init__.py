"""The RegLess compiler: liveness, region creation, annotations, metadata."""

from .annotations import Preload, RegionAnnotations, annotate_regions
from .domtree import DomTree, dominator_tree, postdominator_tree
from .liveness import Liveness, analyze_liveness, find_soft_definitions
from .metadata import MetadataWord, encode_region_metadata, metadata_overhead
from .pipeline import CompiledKernel, compile_kernel
from .regalloc import allocate_registers, build_interference
from .regions import Region, RegionConfig, RegionStats, create_regions, region_stats

__all__ = [
    "Preload",
    "RegionAnnotations",
    "annotate_regions",
    "DomTree",
    "dominator_tree",
    "postdominator_tree",
    "Liveness",
    "analyze_liveness",
    "find_soft_definitions",
    "MetadataWord",
    "encode_region_metadata",
    "metadata_overhead",
    "CompiledKernel",
    "compile_kernel",
    "allocate_registers",
    "build_interference",
    "Region",
    "RegionConfig",
    "RegionStats",
    "create_regions",
    "region_stats",
]
