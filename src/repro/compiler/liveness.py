"""Register liveness with GPU-divergence-aware *soft definitions*.

Standard liveness assumes a write kills the previous value of a register.
On a GPU that is wrong when a warp's threads have diverged: a write executed
under divergent control (or under a predicate guard) only updates the active
lanes, so the old value must stay live for the inactive lanes.  The paper
calls such writes **soft definitions** (section 4.4, Algorithm 2).

This module provides:

* :func:`find_soft_definitions` — Algorithm 2 of the paper, which classifies
  each (pc, reg) definition as soft or hard.  Predicate-guarded writes are
  soft by construction (they never write all lanes in general).
* :class:`Liveness` — per-block and per-PC live sets computed with soft
  definitions excluded from the kill sets.

Because Algorithm 2 itself consults liveness on CFG edges, the analysis
iterates: it starts from the most conservative assumption (every guarded
definition is soft), classifies, recomputes, and repeats to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..isa.kernel import Kernel
from ..isa.registers import Reg
from .domtree import DomTree, dominator_tree, postdominator_tree

__all__ = ["Liveness", "analyze_liveness", "find_soft_definitions"]


@dataclass
class Liveness:
    """Liveness facts for one kernel."""

    kernel: Kernel
    #: (pc, reg) pairs whose definitions are soft (do not kill).
    soft_defs: FrozenSet[Tuple[int, Reg]]
    live_in: Dict[str, FrozenSet[Reg]] = field(default_factory=dict)
    live_out: Dict[str, FrozenSet[Reg]] = field(default_factory=dict)
    #: live set immediately before each PC.
    live_before: List[FrozenSet[Reg]] = field(default_factory=list)
    #: live set immediately after each PC.
    live_after: List[FrozenSet[Reg]] = field(default_factory=list)

    def is_soft_def(self, pc: int, reg: Reg) -> bool:
        return (pc, reg) in self.soft_defs

    def live_on_edge(self, src: str, dst: str) -> FrozenSet[Reg]:
        """Registers live along the CFG edge ``src -> dst``."""
        if dst not in {s for s in self.kernel.successors(src)}:
            raise ValueError(f"no CFG edge {src!r} -> {dst!r}")
        return self.live_in[dst]

    def max_live(self) -> int:
        """Maximum number of simultaneously live registers at any PC."""
        if not self.live_before:
            return 0
        return max(len(s) for s in self.live_before)

    def live_counts(self) -> List[int]:
        """Live-register count before each static instruction (Figure 5)."""
        return [len(s) for s in self.live_before]

    def death_map(self) -> Dict[int, Tuple[Reg, ...]]:
        """Registers whose live range ends at each PC (used by the RFV
        baseline to free physical registers)."""
        deaths: Dict[int, Tuple[Reg, ...]] = {}
        for pc, _, insn in self.kernel.iter_pcs():
            alive = self.live_before[pc] | frozenset(insn.reg_dsts)
            dying = alive - self.live_after[pc]
            if dying:
                deaths[pc] = tuple(sorted(dying))
        return deaths


def _kills(kernel: Kernel, soft: Set[Tuple[int, Reg]], pc: int) -> List[Reg]:
    insn = kernel.insn_at(pc)
    return [r for r in insn.reg_dsts if (pc, r) not in soft]


def _dataflow(
    kernel: Kernel, soft: Set[Tuple[int, Reg]]
) -> Tuple[Dict[str, FrozenSet[Reg]], Dict[str, FrozenSet[Reg]]]:
    """Backward may-liveness with the given soft-definition set."""
    use: Dict[str, Set[Reg]] = {}
    defs: Dict[str, Set[Reg]] = {}
    for block in kernel.blocks:
        u: Set[Reg] = set()
        d: Set[Reg] = set()
        for pc in kernel.pcs_of_block(block.label):
            insn = kernel.insn_at(pc)
            for r in insn.reg_srcs:
                if r not in d:
                    u.add(r)
            for r in _kills(kernel, soft, pc):
                d.add(r)
        use[block.label] = u
        defs[block.label] = d

    live_in: Dict[str, Set[Reg]] = {b.label: set() for b in kernel.blocks}
    live_out: Dict[str, Set[Reg]] = {b.label: set() for b in kernel.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(kernel.blocks):
            lbl = block.label
            out: Set[Reg] = set()
            for s in kernel.successors(lbl):
                out |= live_in[s]
            inn = use[lbl] | (out - defs[lbl])
            if out != live_out[lbl] or inn != live_in[lbl]:
                live_out[lbl] = out
                live_in[lbl] = inn
                changed = True
    return (
        {k: frozenset(v) for k, v in live_in.items()},
        {k: frozenset(v) for k, v in live_out.items()},
    )


def _per_pc(
    kernel: Kernel,
    soft: Set[Tuple[int, Reg]],
    live_out: Dict[str, FrozenSet[Reg]],
) -> Tuple[List[FrozenSet[Reg]], List[FrozenSet[Reg]]]:
    n = kernel.num_instructions
    before: List[FrozenSet[Reg]] = [frozenset()] * n
    after: List[FrozenSet[Reg]] = [frozenset()] * n
    for block in kernel.blocks:
        live: Set[Reg] = set(live_out[block.label])
        for pc in reversed(kernel.pcs_of_block(block.label)):
            insn = kernel.insn_at(pc)
            after[pc] = frozenset(live)
            live -= set(_kills(kernel, soft, pc))
            live |= set(insn.reg_srcs)
            before[pc] = frozenset(live)
    return before, after


def find_soft_definitions(
    kernel: Kernel,
    live_in: Dict[str, FrozenSet[Reg]],
    dom: DomTree,
    pdom: DomTree,
) -> Set[Tuple[int, Reg]]:
    """Algorithm 2 (IsSoftDef) applied to every definition in the kernel.

    A definition of ``reg`` in block B is soft when some strict dominator D
    of B (with no reconvergence point between D and B) has a successor S on
    a different control path (S does not dominate B) where ``reg`` is live —
    i.e. another definition's value may flow to lanes not covered by this
    write.  Predicate-guarded writes are soft unconditionally.
    """
    soft: Set[Tuple[int, Reg]] = set()
    for pc, label, insn in kernel.iter_pcs():
        for reg in insn.reg_dsts:
            if insn.is_guarded:
                soft.add((pc, reg))
                continue
            if _is_soft_def(kernel, live_in, dom, pdom, label, reg):
                soft.add((pc, reg))
    return soft


def _is_soft_def(
    kernel: Kernel,
    live_in: Dict[str, FrozenSet[Reg]],
    dom: DomTree,
    pdom: DomTree,
    insn_bb: str,
    reg: Reg,
) -> bool:
    if insn_bb not in dom:
        return False  # unreachable block
    insn_doms = dom.dominators(insn_bb)
    for dom_bb in dom.strict_dominators(insn_bb):
        if dom_bb in pdom:
            strict_pdoms = pdom.dominators(dom_bb) - {dom_bb}
            # A reconvergence point between the dominator and the candidate
            # means divergence at dom_bb has healed before the write.
            if insn_doms & strict_pdoms:
                continue
        for successor in kernel.successors(dom_bb):
            if successor in dom and dom.dominates(successor, insn_bb):
                continue
            if reg in live_in.get(successor, frozenset()):
                return True
    return False


def analyze_liveness(kernel: Kernel, max_rounds: int = 4) -> Liveness:
    """Full divergence-aware liveness analysis for a kernel.

    Iterates dataflow and Algorithm 2 to a fixpoint: soft definitions
    lengthen live ranges, which can expose further soft definitions.
    """
    dom = dominator_tree(kernel)
    pdom = postdominator_tree(kernel)

    # Round 0: only guards are soft.
    soft: Set[Tuple[int, Reg]] = {
        (pc, r)
        for pc, _, insn in kernel.iter_pcs()
        if insn.is_guarded
        for r in insn.reg_dsts
    }
    live_in, live_out = _dataflow(kernel, soft)

    for _ in range(max_rounds):
        new_soft = find_soft_definitions(kernel, live_in, dom, pdom)
        new_soft |= soft
        if new_soft == soft:
            break
        soft = new_soft
        live_in, live_out = _dataflow(kernel, soft)

    before, after = _per_pc(kernel, soft, live_out)
    return Liveness(
        kernel=kernel,
        soft_defs=frozenset(soft),
        live_in=live_in,
        live_out=live_out,
        live_before=before,
        live_after=after,
    )
