"""Bit-level metadata encoding (paper section 5.4).

Metadata rides in the instruction stream: with 10 of each 64 instruction
bits used by the opcode, 54 bits per instruction remain for RegLess
metadata.  This module packs a region's annotations into that budget and
reports the number of metadata instruction slots consumed — the simulator
charges these as extra fetch/issue work, and the energy model charges their
fetch energy.

Layout (one choice consistent with the paper's counts):

* **Region-start flag instruction**: 8 banks x 4-bit usage (32 bits) +
  up to 3 events of 7 bits (register id 6 bits + invalidate flag).
* **Event instruction**: up to 3 more preload/invalidate events.
* **Last-use marker**: 2 bits per operand slot (erase / evict flags) for
  up to 9 instructions of 3 operands.
* **Compact encoding** for small regions: 2 events + flags for up to 4
  instructions in a single slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - circular at runtime (annotations
    # imports the slot-count formula from here); signatures only.
    from .annotations import RegionAnnotations

__all__ = [
    "MetadataWord",
    "encode_region_metadata",
    "n_metadata_slots",
    "METADATA_BITS_PER_INSN",
    "BANK_USAGE_BITS",
    "EVENT_BITS",
]

METADATA_BITS_PER_INSN = 54
BANK_USAGE_BITS = 32  # 8 banks x 4 bits
EVENT_BITS = 7  # 6-bit register id + invalidate flag
LASTUSE_BITS_PER_INSN = 6  # 3 operand slots x (last-use bit + erase/evict bit)


@dataclass(frozen=True)
class MetadataWord:
    """One encoded metadata instruction slot."""

    kind: str  # "flag", "event", "lastuse", "compact"
    bits_used: int

    def __post_init__(self) -> None:
        if self.bits_used > METADATA_BITS_PER_INSN:
            raise ValueError(
                f"metadata word overflows: {self.bits_used} bits "
                f"> {METADATA_BITS_PER_INSN}"
            )


def encode_region_metadata(ann: RegionAnnotations, n_insns: int) -> List[MetadataWord]:
    """Pack one region's annotations into metadata instruction slots."""
    events = len(ann.preloads) + len(ann.cache_invalidates)

    if n_insns <= 4 and events <= 2:
        bits = events * EVENT_BITS + n_insns * LASTUSE_BITS_PER_INSN + 8
        return [MetadataWord("compact", bits)]

    words: List[MetadataWord] = []
    first_events = min(events, 3)
    words.append(
        MetadataWord("flag", BANK_USAGE_BITS + first_events * EVENT_BITS)
    )
    remaining = events - first_events
    while remaining > 0:
        batch = min(remaining, 3)
        words.append(MetadataWord("event", batch * EVENT_BITS))
        remaining -= batch

    insns_left = n_insns
    while insns_left > 0:
        batch = min(insns_left, 9)
        words.append(MetadataWord("lastuse", batch * LASTUSE_BITS_PER_INSN))
        insns_left -= batch
    return words


def n_metadata_slots(n_insns: int, n_events: int) -> int:
    """Slot count of :func:`encode_region_metadata`, in closed form.

    One flag instruction carries the bank usage plus up to 3
    preload/invalidate events; each further event instruction carries 3
    more; every 9 region instructions need one last-use marker.  Small
    regions (<= 4 instructions, <= 2 events) use the compact
    single-instruction encoding.
    """
    if n_insns <= 4 and n_events <= 2:
        return 1
    extra_events = max(0, n_events - 3)
    event_insns = 1 + (extra_events + 2) // 3
    lastuse_insns = (n_insns + 8) // 9
    return event_insns + lastuse_insns


def metadata_overhead(ann: RegionAnnotations, n_insns: int) -> Tuple[int, int]:
    """(instruction slots, total bits) of metadata for one region."""
    words = encode_region_metadata(ann, n_insns)
    return len(words), sum(w.bits_used for w in words)
