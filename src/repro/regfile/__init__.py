"""Operand-storage backends: baseline RF, RF hierarchy, RF virtualization."""

from .base import OperandStorage
from .baseline import BaselineRF
from .rfh import LevelAssignment, RFHStorage, assign_levels
from .rfv import RFVStorage

__all__ = [
    "OperandStorage",
    "BaselineRF",
    "LevelAssignment",
    "RFHStorage",
    "assign_levels",
    "RFVStorage",
]
