"""Baseline full register file (Figure 1a).

A 2048-entry (256 KB) banked register file per SM: every operand read and
result write-back accesses it.  Bank conflicts are modeled statistically via
the operand-collector abstraction: the paper's baseline includes operand
collectors that smooth conflicts, so we charge accesses but no extra stalls.

Counters:

* ``rf_read`` / ``rf_write`` — 128-byte accesses to the main register file
  (also the Figure 3 "backing store accesses" series for the baseline).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..isa.instructions import Instruction
from .base import CTAOccupancyMixin, OperandStorage

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.warp import Warp

__all__ = ["BaselineRF"]


class BaselineRF(CTAOccupancyMixin, OperandStorage):
    """The conventional full-size register file."""

    name = "baseline"

    #: CTA residency is monotone while a CTA has live warps (retirement
    #: needs every warp exited), so cohort batching may share the
    #: admission verdict across same-CTA warps and cache classifications.
    lockstep_pure = True

    def __init__(self, entries_per_sm: int = 2048):
        super().__init__()
        self.entries_per_sm = entries_per_sm

    def attach(self, shard) -> None:
        super().attach(shard)
        num_regs = shard.sm.compiled.kernel.num_regs
        self.init_occupancy(shard, num_regs, self.entries_per_sm)

    def can_issue(self, warp: "Warp", pc: int, insn: Instruction) -> bool:
        return self.is_resident(warp)

    def on_warp_exit(self, warp: "Warp") -> None:
        self.retire_warp(warp)

    def on_issue(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        n_reads = len(insn.reg_srcs)
        if n_reads:
            self.counters.inc("rf_read", n_reads)

    def on_writeback(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        n_writes = len(insn.reg_dsts)
        if n_writes:
            self.counters.inc("rf_write", n_writes)
