"""Register-file hierarchy — Gebhart et al. [11] (Figure 1b).

A compile-time-managed three-level hierarchy: a tiny last-result file (LRF),
a small operand register file (ORF), and the full-size main register file
(MRF).  The compiler assigns each *value* (static definition) to a level
based on its reuse pattern:

* consumed only by the immediately following instruction -> LRF;
* all uses within a short window in the same block, while an ORF slot is
  free -> ORF;
* anything else (including every cross-block value) -> MRF.

Values whose lifetime escapes their small level are additionally written
through to the MRF.  The technique requires the two-level warp scheduler
(run it with ``GPUConfig(scheduler="two_level")``), which is where its
performance cost relative to GTO comes from (paper section 6.4).

Counters: ``rfh_lrf_*``, ``rfh_orf_*`` for the small structures;
``rf_read``/``rf_write`` for MRF accesses (so the Figure 3 backing-store
series uses the same counter names as the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..compiler.pipeline import CompiledKernel
from ..isa.instructions import Instruction
from .base import CTAOccupancyMixin, OperandStorage

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.warp import Warp

__all__ = ["RFHStorage", "assign_levels", "LevelAssignment"]

LRF, ORF, MRF = "lrf", "orf", "mrf"

#: per-level access counter names, resolved once (issue/write-back hot path).
_C_READ = {lvl: f"rfh_{lvl}_read" for lvl in (LRF, ORF)}
_C_WRITE = {lvl: f"rfh_{lvl}_write" for lvl in (LRF, ORF)}


@dataclass(frozen=True)
class LevelAssignment:
    """Compile-time placement for one kernel."""

    #: level supplying each (pc, src register index) read.
    read_level: Dict[Tuple[int, int], str]
    #: level receiving each (pc, dst register index) write.
    write_level: Dict[Tuple[int, int], str]
    #: (pc, reg) writes that additionally spill through to the MRF.
    writethrough: frozenset


def assign_levels(
    compiled: CompiledKernel,
    orf_entries: int = 16,
    orf_window: int = 16,
) -> LevelAssignment:
    """Greedy per-block level assignment."""
    kernel = compiled.kernel
    liveness = compiled.liveness
    read_level: Dict[Tuple[int, int], str] = {}
    write_level: Dict[Tuple[int, int], str] = {}
    writethrough = set()

    for block in kernel.blocks:
        pcs = list(kernel.pcs_of_block(block.label))
        # Uses of each def within the block.
        last_def: Dict[int, int] = {}
        uses_of_def: Dict[Tuple[int, int], List[int]] = {}
        for pc in pcs:
            insn = kernel.insn_at(pc)
            for r in insn.reg_srcs:
                if r.index in last_def:
                    uses_of_def.setdefault((last_def[r.index], r.index), []).append(pc)
            for r in insn.reg_dsts:
                last_def[r.index] = pc

        orf_live = 0
        orf_free_at: List[int] = []  # pcs where an ORF slot frees

        for pc in pcs:
            insn = kernel.insn_at(pc)
            while orf_free_at and orf_free_at[0] <= pc:
                orf_free_at.pop(0)
                orf_live -= 1
            for r in insn.reg_dsts:
                key = (pc, r.index)
                uses = uses_of_def.get(key, [])
                live_out = r in liveness.live_after[pcs[-1]] or not uses
                escapes = r in liveness.live_out[block.label]
                if uses and all(u == pc + 1 for u in uses) and not escapes:
                    level = LRF
                elif (
                    uses
                    and max(uses) - pc <= orf_window
                    and orf_live < orf_entries
                ):
                    # Escaping values may still serve their local uses from
                    # the ORF; the escaped copy is written through to MRF.
                    level = ORF
                    orf_live += 1
                    orf_free_at.append(max(uses) + 1)
                    orf_free_at.sort()
                else:
                    level = MRF
                write_level[key] = level
                if level != MRF and (escapes or live_out):
                    writethrough.add(key)
                for u in uses:
                    read_level[(u, r.index)] = level

    return LevelAssignment(
        read_level=read_level,
        write_level=write_level,
        writethrough=frozenset(writethrough),
    )


class RFHStorage(CTAOccupancyMixin, OperandStorage):
    """The RFH backend: counts accesses per level."""

    name = "rfh"

    #: hierarchical allocation is per-warp state driven only by the warp's
    #: own issues/writebacks; CTA residency is monotone while live — safe
    #: for cohort batching (moot in the stock grid: RFH pairs with the
    #: two-level scheduler, which refuses batching first).
    lockstep_pure = True

    def __init__(self, compiled: CompiledKernel, orf_entries: int = 16,
                 orf_window: int = 16, mrf_entries_per_sm: int = 2048):
        super().__init__()
        self.compiled = compiled
        self.mrf_entries_per_sm = mrf_entries_per_sm
        self.assignment = assign_levels(compiled, orf_entries, orf_window)

    def attach(self, shard) -> None:
        super().attach(shard)
        num_regs = shard.sm.compiled.kernel.num_regs
        self.init_occupancy(shard, num_regs, self.mrf_entries_per_sm)

    def can_issue(self, warp: "Warp", pc: int, insn: Instruction) -> bool:
        return self.is_resident(warp)

    def on_warp_exit(self, warp: "Warp") -> None:
        self.retire_warp(warp)

    def on_issue(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        read_level = self.assignment.read_level
        for r in insn.reg_srcs:
            level = read_level.get((pc, r.index), MRF)
            if level == MRF:
                self.counters.inc("rf_read")
            else:
                self.counters.inc(_C_READ[level])

    def on_writeback(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        write_level = self.assignment.write_level
        for r in insn.reg_dsts:
            key = (pc, r.index)
            level = write_level.get(key, MRF)
            if level == MRF:
                self.counters.inc("rf_write")
            else:
                self.counters.inc(_C_WRITE[level])
            if key in self.assignment.writethrough:
                self.counters.inc("rf_write")
