"""Register-file virtualization — Jeon et al. [19] (Figure 1c).

Architectural registers are renamed onto a *half-size* physical register
file: a physical register is allocated at a register's (re)definition and
released when divergence-aware liveness says the value is dead.  When the
free pool runs dry the defining warp stalls — this is the register-pressure
slowdown the paper observed for ``dwt2d`` and ``hotspot``.

The rename table and metadata cost are assumed negligible, matching the
paper's comparison methodology (section 6.1).

Counters: ``rfv_read``/``rfv_write`` (accesses to the half-size structure),
``rfv_stall_cycles`` (issue attempts rejected for lack of a physical
register).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set, Tuple

from ..compiler.pipeline import CompiledKernel
from ..isa.instructions import Instruction
from .base import OperandStorage

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.warp import Warp

__all__ = ["RFVStorage"]


class RFVStorage(OperandStorage):
    """The RFV backend for one shard."""

    name = "rfv"

    #: ``can_issue`` is impure on failure (it counts the rejected attempt
    #: toward ``rfv_stall_cycles`` and arms the emergency valve), so
    #: pressure-blocked warps must stay in the shard's ready set and be
    #: re-attempted every cycle — parking them would change both counters
    #: and valve timing.
    parkable = False

    #: same valve impurity: a shared or cached admission verdict would skip
    #: the per-warp failed-attempt count that arms the valve.
    lockstep_pure = False

    #: cycles of shard-wide allocation stall before the emergency valve
    #: opens (renaming deadlock avoidance; counted in ``rfv_overflow``).
    EMERGENCY_CYCLES = 2000

    def __init__(self, compiled: CompiledKernel, phys_regs_per_shard: int = 256):
        super().__init__()
        self.compiled = compiled
        self.capacity = phys_regs_per_shard
        self._deaths = compiled.liveness.death_map()
        #: live rename mappings: (warp id, architectural reg) present.
        self._mapped: Set[Tuple[int, int]] = set()
        self._blocked_since: int = -1
        self._emergency = False
        #: per-warp mapping-state version; any mutation of a warp's
        #: mappings bumps it, invalidating that warp's cached need count.
        self._need_ver: Dict[int, int] = {}
        #: wid -> (insn, version, need) — a pressure-blocked warp calls
        #: ``_needed_allocations`` for the same instruction every cycle
        #: (can_issue + stall_reason) until something actually changes.
        self._need_cache: Dict[int, Tuple[Instruction, int, int]] = {}

    # -- allocation bookkeeping ----------------------------------------------

    @property
    def allocated(self) -> int:
        return len(self._mapped)

    def _needed_allocations(self, warp: "Warp", insn: Instruction) -> int:
        wid = warp.wid
        ver = self._need_ver.get(wid, 0)
        hit = self._need_cache.get(wid)
        if hit is not None and hit[0] is insn and hit[1] == ver:
            return hit[2]
        need = 0
        mapped = self._mapped
        for r in insn.reg_srcs:
            if (wid, r.index) not in mapped:
                need += 1  # first touch (kernel parameter): map on read
        for r in insn.reg_dsts:
            if (wid, r.index) not in mapped:
                need += 1
        self._need_cache[wid] = (insn, ver, need)
        return need

    # -- issue-path hooks -------------------------------------------------------

    def can_issue(self, warp: "Warp", pc: int, insn: Instruction) -> bool:
        need = self._needed_allocations(warp, insn)
        if self.allocated + need > self.capacity:
            if self._emergency:
                self.counters.inc("rfv_overflow")
                return True
            now = self.now
            if self._blocked_since < 0:
                self._blocked_since = now
            elif now - self._blocked_since > self.EMERGENCY_CYCLES:
                # No warp has issued for a long time: every warp is waiting
                # on someone else's physical registers.  Over-allocate until
                # occupancy recovers (visible as rfv_overflow).
                self._emergency = True
                self.counters.inc("rfv_overflow")
                return True
            self.counters.inc("rfv_stall_cycles")
            return False
        return True

    def stall_reason(self, warp: "Warp", pc: int, insn: Instruction):
        """Pure preview of :meth:`can_issue` for stall attribution — no
        emergency-valve bookkeeping, no counter increments."""
        need = self._needed_allocations(warp, insn)
        if self.allocated + need > self.capacity and not self._emergency:
            return "rfv_pressure"
        return None

    def on_issue(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        self._blocked_since = -1
        wid = warp.wid
        for r in insn.reg_srcs:
            self._mapped.add((wid, r.index))
            self.counters.inc("rfv_read")
        for r in insn.reg_dsts:
            self._mapped.add((wid, r.index))
        self._need_ver[wid] = self._need_ver.get(wid, 0) + 1

    def on_writeback(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        wid = warp.wid
        for r in insn.reg_dsts:
            self.counters.inc("rfv_write")
        # Free physical registers whose live range ends at this pc.
        for r in self._deaths.get(pc, ()):
            self._mapped.discard((wid, r.index))
        if self._emergency and self.allocated <= self.capacity:
            self._emergency = False
        self._need_ver[wid] = self._need_ver.get(wid, 0) + 1

    def on_warp_exit(self, warp: "Warp") -> None:
        wid = warp.wid
        self._mapped = {(w, r) for (w, r) in self._mapped if w != wid}
        self._need_ver[wid] = self._need_ver.get(wid, 0) + 1
