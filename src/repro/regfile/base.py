"""The operand-storage interface — the comparison axis of the paper (Fig. 1).

Every register-storage design (baseline RF, RF hierarchy, RF virtualization,
RegLess) implements :class:`OperandStorage`.  The shard consults it for warp
*eligibility* before issuing (RegLess admits only warps whose region is
staged), notifies it of issues and write-backs (where access energy is
counted), and gives it a cycle hook for background work (preloads,
evictions).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..isa.instructions import Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.shard import Shard
    from ..sim.warp import Warp

__all__ = ["OperandStorage"]


class OperandStorage:
    """Base class; the default implementation is a no-op storage that never
    blocks issue and counts nothing (useful for tests)."""

    name = "null"

    #: May the shard *park* warps this storage blocks (remove them from the
    #: issue scan until :meth:`notify_wake`)?  Requires two properties:
    #: ``can_issue`` must be side-effect free on failure (so skipping the
    #: per-cycle re-attempt changes nothing), and every transition that
    #: unblocks a warp must call :meth:`notify_wake` for it.  Storages that
    #: can't guarantee both (RFV's emergency valve counts failed attempts)
    #: set this False and their blocked warps stay in the ready set.
    parkable = True

    #: May cohort batching (repro.sim.warpbatch) share this storage's
    #: admission verdict across same-pc warps and cache ready-warp stall
    #: classifications between cycles?  Requires ``can_issue`` success to
    #: be side-effect free *and* every verdict/classification change for a
    #: live warp to flow through one of that warp's own events (its issue,
    #: writeback, exit) or a ``notify_wake``.  RFV's emergency valve counts
    #: failed attempts, so it sets this False.
    lockstep_pure = True

    def __init__(self) -> None:
        self.shard: Optional["Shard"] = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, shard: "Shard") -> None:
        self.shard = shard

    def notify_wake(self, warp: "Warp") -> None:
        """Upcall: a storage-side transition may have unblocked ``warp``
        (CTA became resident, RegLess region activated/preload advanced).
        The shard re-checks the warp and returns it to the ready set if its
        ``stall_reason`` cleared.  Safe to call spuriously."""
        if self.shard is not None:
            self.shard.reevaluate(warp)

    @property
    def counters(self):
        return self.shard.sm.counters

    @property
    def now(self) -> int:
        return self.shard.sm.wheel.now

    # -- issue-path hooks ----------------------------------------------------------

    def can_issue(self, warp: "Warp", pc: int, insn: Instruction) -> bool:
        """May this warp issue the instruction at ``pc`` this cycle?"""
        return True

    def stall_reason(self, warp: "Warp", pc: int,
                     insn: Instruction) -> Optional[str]:
        """Why :meth:`can_issue` would return False, as a stall bin from
        :data:`repro.obs.stalls.STALL_REASONS` — or ``None`` when the
        storage would not block the warp.

        MUST be side-effect free: the stall-attribution pass calls it for
        warps the issue loop never reached, so it must not perturb
        emergency valves, counters, or any other issue-path state (which
        ``can_issue`` is allowed to do).
        """
        return None

    def on_issue(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        """Called right after an instruction issues (operand read time).
        ``warp.pc`` has already advanced past control resolution."""

    def metadata_slots(self, warp: "Warp", pc: int) -> int:
        """Issue slots consumed by metadata instructions when ``pc`` issues
        (RegLess charges its section 5.4 encoding here)."""
        return 0

    def on_writeback(self, warp: "Warp", pc: int, insn: Instruction) -> None:
        """Called when an instruction's result is written back."""

    def on_warp_exit(self, warp: "Warp") -> None:
        """Called once when a warp executes EXIT."""

    # -- background ------------------------------------------------------------------
    #
    # Component clocking contract (docs/performance.md): the shard calls
    # :meth:`cycle` only on cycles where :meth:`has_work` is True, so a
    # storage must answer ``has_work`` from O(1) state and must re-arm it
    # (return True again) from the same entry points that enqueue new
    # background work.  Skipped cycles must be side-effect free: whatever
    # ``cycle`` would have done on them, lazily accruable or nothing.

    def cycle(self) -> None:
        """Per-cycle background work (preload queues, capacity manager)."""

    def has_work(self, now: int) -> bool:
        """Would :meth:`cycle` do anything at cycle ``now``?  The shard
        skips the call when False; a storage whose cycle hook is ever
        non-idempotent must make this exact, not merely conservative."""
        return False

    def on_fast_forward(self, cycles: int) -> None:
        """``cycles`` dead cycles were elided by the simulator's
        fast-forward (no ``cycle`` calls happened for them, matching the
        per-cycle reference, which also never cycled storages during a
        skip).  Storages holding wall-clock deadlines measured in *called*
        cycles (the capacity manager's emergency counter) shift them here."""

    @property
    def idle(self) -> bool:
        """True when the storage has no background work outstanding (used by
        the simulator's fast-forward optimization).  Must be O(1)."""
        return True

    # -- end-of-run ---------------------------------------------------------------------

    def finalize(self) -> None:
        """Flush any end-of-run accounting."""


class CTAOccupancyMixin:
    """Register-pressure occupancy gating for statically-allocated RFs.

    The baseline register file (and RFH's main RF) holds every resident
    warp's full register allocation, so only ``rf_entries / regs_per_warp``
    warps fit per SM.  Residency is granted per CTA (barriers synchronize a
    whole CTA, so admitting partial CTAs would deadlock); when a resident
    CTA finishes, the next one launches.
    """

    def init_occupancy(self, shard, num_regs: int, rf_entries_per_sm: int) -> None:
        cfg = shard.sm.config
        per_shard_entries = rf_entries_per_sm // cfg.schedulers_per_sm
        max_warps = per_shard_entries // max(1, num_regs)
        cta = cfg.cta_size_warps
        max_ctas = max(1, max_warps // cta)
        ctas = sorted({w.cta_id for w in shard.warps})
        self._cta_warps = {
            c: [w for w in shard.warps if w.cta_id == c] for c in ctas
        }
        self._resident_ctas = set(ctas[:max_ctas])
        self._pending_ctas = [c for c in ctas[max_ctas:]]

    def is_resident(self, warp) -> bool:
        return warp.cta_id in self._resident_ctas

    def stall_reason(self, warp, pc, insn) -> Optional[str]:
        """Non-resident CTAs are occupancy-gated (pure; see base class)."""
        return None if self.is_resident(warp) else "occupancy"

    def retire_warp(self, warp) -> None:
        """Called on warp exit; admits the next CTA when one drains."""
        cta = warp.cta_id
        if cta not in self._resident_ctas:
            return
        if all(w.exited for w in self._cta_warps[cta]):
            self._resident_ctas.discard(cta)
            if self._pending_ctas:
                nxt = self._pending_ctas.pop(0)
                self._resident_ctas.add(nxt)
                # The admitted CTA's warps were occupancy-parked (guarded:
                # tests exercise the mixin without an OperandStorage base).
                wake = getattr(self, "notify_wake", None)
                if wake is not None:
                    for w in self._cta_warps[nxt]:
                        wake(w)
