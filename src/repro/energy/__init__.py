"""Energy, power and area models plus event counters."""

from .accounting import Counters
from .area import AreaBreakdown, AreaModel, OSU_CAPACITY_SWEEP
from .model import (
    BASELINE_RF_ENTRIES,
    EnergyBreakdown,
    EnergyModel,
    EnergyParams,
)

__all__ = [
    "Counters",
    "AreaBreakdown",
    "AreaModel",
    "OSU_CAPACITY_SWEEP",
    "BASELINE_RF_ENTRIES",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
]
