"""Area and power scaling of RegLess configurations (Figures 11 and 12).

The paper synthesized each OSU capacity to a 28 nm netlist; area splits into
storage (SRAM, linear in capacity), logic (tags, decoders, arbitration —
slightly sublinear), and the fixed compressor.  The constants are calibrated
to the normalized Figure 11 shape: a 2048-entry RegLess is ~1.05x the
baseline RF area; the 512-entry design point is ~0.3x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from .model import BASELINE_RF_ENTRIES, EnergyParams

__all__ = ["AreaModel", "AreaBreakdown", "OSU_CAPACITY_SWEEP"]

#: the capacities evaluated in Figures 11-13.
OSU_CAPACITY_SWEEP = (128, 192, 256, 384, 512, 1024, 2048)


@dataclass(frozen=True)
class AreaBreakdown:
    """Normalized area of one RegLess configuration."""

    storage: float
    logic: float
    compressor: float

    @property
    def total(self) -> float:
        return self.storage + self.logic + self.compressor

    def as_dict(self) -> Dict[str, float]:
        return {
            "storage": self.storage,
            "logic": self.logic,
            "compressor": self.compressor,
            "total": self.total,
        }


class AreaModel:
    """Analytic area/power scaling, normalized to the baseline RF."""

    def __init__(
        self,
        storage_frac: float = 0.80,
        logic_frac: float = 0.20,
        logic_exponent: float = 0.7,
        compressor_area: float = 0.02,
    ):
        self.storage_frac = storage_frac
        self.logic_frac = logic_frac
        self.logic_exponent = logic_exponent
        self.compressor_area = compressor_area

    def area(self, osu_entries: int) -> AreaBreakdown:
        scale = osu_entries / BASELINE_RF_ENTRIES
        return AreaBreakdown(
            storage=self.storage_frac * scale,
            logic=self.logic_frac * scale ** self.logic_exponent,
            compressor=self.compressor_area,
        )

    def sweep(self, capacities: Sequence[int] = OSU_CAPACITY_SWEEP) -> Dict[int, AreaBreakdown]:
        return {n: self.area(n) for n in capacities}

    # -- Figure 12: combined static + average dynamic power -------------------------

    def power(
        self,
        osu_entries: int,
        accesses_per_cycle: float = 2.2,
        params: EnergyParams = EnergyParams(),
    ) -> Dict[str, float]:
        """Normalized power of one configuration.

        ``accesses_per_cycle`` is the average OSU read+write activity (the
        paper drove the netlist with simulation traces; experiments pass the
        measured value).  Normalization: the baseline RF at the same
        activity is 1.0.
        """
        baseline = (
            accesses_per_cycle * params.access_energy(BASELINE_RF_ENTRIES)
            + params.static_power(BASELINE_RF_ENTRIES)
        )
        osu_dyn = accesses_per_cycle * params.access_energy(osu_entries)
        osu_dyn += accesses_per_cycle * 0.5 * params.tag_access
        osu_static = params.static_power(osu_entries) * 1.1
        compressor = 0.02 * baseline + 0.1 * params.compressor_access
        return {
            "osu": (osu_dyn + osu_static) / baseline,
            "compressor": compressor / baseline,
            "total": (osu_dyn + osu_static + compressor) / baseline,
        }
