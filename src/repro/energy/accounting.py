"""Event counters shared by the timing simulator and the energy model.

Every hardware model increments named counters (``rf_read``, ``osu_tag``,
``l2_access``, ...); the energy model later converts counts to joules.
Counters are a thin wrapper over a ``dict`` with attribute-style access so
call sites read like hardware events: ``counters.inc("osu_read")``.

Components may instead emit through a :class:`repro.obs.metrics.MetricScope`
(duck-typed to this class), which mirrors every increment into a
hierarchical registry *and* into these flat counters under the legacy name —
the energy model and cached results are unaffected by the observability
layer.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple

__all__ = ["Counters"]


class Counters:
    """Named integer event counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, float] = defaultdict(float)

    def inc(self, name: str, amount: float = 1.0) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def total(self, prefix: str) -> float:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(v for k, v in self._counts.items() if k.startswith(prefix))

    def merge(self, other: "Counters") -> None:
        for name, value in other._counts.items():
            self._counts[name] += value

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self.items())
        return f"Counters({inner})"
