"""Energy model: convert event counters into energy numbers.

All energies are in abstract units normalized so that **one access to the
baseline 2048-entry register file costs 1.0** — the paper's results are all
normalized (Figures 12-15), so only ratios matter.

Scaling choices, calibrated against the paper:

* Per-access energy of a register structure scales essentially linearly
  with capacity (the paper's placed-and-routed Figure 12 shows power
  tracking capacity), with a small wiring/decode floor:
  ``e(n) = floor + (1 - floor) * (n / 2048)``.
* Static (leakage + clock) power per structure is proportional to capacity,
  with clock gating keeping it a modest fraction of dynamic power.
* GPUWattch-style constants cover the rest of the GPU (execution units,
  fetch/decode, L1/L2/DRAM accesses) such that the baseline register file
  is ~16.7% of total GPU energy — the paper's "No RF" upper bound
  (Figure 15).

The model reads the counter names produced by each backend:

========  =============================================================
baseline  ``rf_read``/``rf_write``
RFV       ``rfv_read``/``rfv_write`` (half-size structure)
RFH       ``rf_*`` (MRF) + ``rfh_orf_*`` + ``rfh_lrf_*``
RegLess   ``osu_read``/``osu_write``/``osu_tag`` + ``compressor_*``
========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["EnergyParams", "EnergyBreakdown", "EnergyModel", "BASELINE_RF_ENTRIES"]

BASELINE_RF_ENTRIES = 2048


@dataclass(frozen=True)
class EnergyParams:
    """All model constants (units: baseline-RF-access = 1.0)."""

    #: wiring/decode floor of the capacity scaling law.
    access_floor: float = 0.02
    #: per-access energy of a tag lookup (RegLess OSU banks).
    tag_access: float = 0.015
    #: per-access energy of the compressor (pattern match / expand).
    compressor_access: float = 0.05
    #: RFH small structures, as equivalent entry counts.
    orf_entries: int = 256
    lrf_entries: int = 64
    #: static power of a register structure, per 2048 entries per cycle
    #: (clock-gated).
    rf_static_per_cycle: float = 0.35
    #: rest of the GPU -------------------------------------------------------
    exec_per_insn: float = 8.6
    metadata_fetch: float = 0.4  # fetch/decode of one metadata instruction
    static_other_per_cycle: float = 4.2
    l1_access: float = 0.9
    l2_access: float = 2.0
    dram_access: float = 6.0
    shared_access: float = 0.5

    def access_energy(self, entries: int) -> float:
        """Per-access energy of a register structure with ``entries``."""
        scale = entries / BASELINE_RF_ENTRIES
        return self.access_floor + (1.0 - self.access_floor) * scale

    def static_power(self, entries: int) -> float:
        return self.rf_static_per_cycle * entries / BASELINE_RF_ENTRIES


@dataclass
class EnergyBreakdown:
    """Energy of one run, split the way the paper reports it."""

    rf: float  # register-structure energy (Figure 14's quantity)
    exec: float
    memory: float
    static: float
    metadata: float

    @property
    def total(self) -> float:
        return self.rf + self.exec + self.memory + self.static + self.metadata

    def as_dict(self) -> Dict[str, float]:
        return {
            "rf": self.rf,
            "exec": self.exec,
            "memory": self.memory,
            "static": self.static,
            "metadata": self.metadata,
            "total": self.total,
        }


class EnergyModel:
    """Maps (counters, cycles, backend) -> energy."""

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.params = params

    # -- register-structure energy per backend ---------------------------------

    def rf_energy(
        self,
        counters: Mapping[str, float],
        cycles: int,
        backend: str,
        osu_entries: int = 512,
        rfv_entries: int = 1024,
    ) -> float:
        p = self.params
        get = lambda k: counters.get(k, 0.0)  # noqa: E731

        if backend == "baseline":
            dyn = (get("rf_read") + get("rf_write")) * p.access_energy(
                BASELINE_RF_ENTRIES
            )
            return dyn + p.static_power(BASELINE_RF_ENTRIES) * cycles

        if backend == "rfv":
            dyn = (get("rfv_read") + get("rfv_write")) * p.access_energy(rfv_entries)
            return dyn + p.static_power(rfv_entries) * cycles

        if backend == "rfh":
            dyn = (get("rf_read") + get("rf_write")) * p.access_energy(
                BASELINE_RF_ENTRIES
            )
            dyn += (get("rfh_orf_read") + get("rfh_orf_write")) * p.access_energy(
                p.orf_entries
            )
            dyn += (get("rfh_lrf_read") + get("rfh_lrf_write")) * p.access_energy(
                p.lrf_entries
            )
            static = (
                p.static_power(BASELINE_RF_ENTRIES)
                + p.static_power(p.orf_entries)
                + p.static_power(p.lrf_entries)
            )
            return dyn + static * cycles

        if backend == "regless":
            dyn = (get("osu_read") + get("osu_write")) * p.access_energy(osu_entries)
            dyn += get("osu_tag") * p.tag_access
            dyn += get("compressor_access") * p.compressor_access
            # Compressor storage leakage folded into its capacity share.
            static = p.static_power(osu_entries) * 1.1
            return dyn + static * cycles

        if backend == "none":
            return 0.0

        raise ValueError(f"unknown backend {backend!r}")

    # -- whole-GPU energy ----------------------------------------------------------

    def gpu_energy(
        self,
        counters: Mapping[str, float],
        cycles: int,
        backend: str,
        osu_entries: int = 512,
        rfv_entries: int = 1024,
    ) -> EnergyBreakdown:
        p = self.params
        get = lambda k: counters.get(k, 0.0)  # noqa: E731
        rf = self.rf_energy(counters, cycles, backend, osu_entries, rfv_entries)
        exec_e = get("insn_issued") * p.exec_per_insn
        metadata = get("metadata_issue") * p.metadata_fetch
        memory = (
            get("l1_access") * p.l1_access
            + get("l2_access") * p.l2_access
            + (get("dram_read") + get("dram_write")) * p.dram_access
            + get("shared_access") * p.shared_access
        )
        static = p.static_other_per_cycle * cycles
        return EnergyBreakdown(
            rf=rf, exec=exec_e, memory=memory, static=static, metadata=metadata
        )
