"""Kernel validation (lint) for hand-written kernels.

The builder and assembler accept anything structurally well-formed; this
pass catches the *semantic* mistakes that otherwise surface as confusing
simulation behaviour:

* reads of registers that are never written and not kernel inputs
  (they silently read zero);
* predicates used (as guards or branch conditions) before any ``SETP``
  can have defined them on some path;
* blocks unreachable from the entry;
* warps that can fall off the end of the kernel (a path to the last
  block without ``EXIT``);
* loops with no exit edge (guaranteed hangs);
* ``SETP`` instructions without a tag (their outcome falls back to the
  oracle default, which is usually unintended in a workload).

Use :func:`validate_kernel` for a report, or :func:`check_kernel` to
raise on errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from .kernel import Kernel
from .opcodes import Opcode
from .registers import Reg

__all__ = ["Diagnostic", "validate_kernel", "check_kernel", "KernelValidationError"]


@dataclass(frozen=True)
class Diagnostic:
    """One finding."""

    severity: str  # "error" | "warning"
    code: str
    message: str

    def render(self) -> str:
        return f"{self.severity}[{self.code}]: {self.message}"


class KernelValidationError(ValueError):
    """Raised by :func:`check_kernel` when errors are present."""

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        super().__init__(
            "; ".join(d.render() for d in diagnostics if d.severity == "error")
        )


def _reachable(kernel: Kernel) -> Set[str]:
    seen = {kernel.entry}
    stack = [kernel.entry]
    while stack:
        label = stack.pop()
        for succ in kernel.successors(label):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def _check_unreachable(kernel: Kernel, out: List[Diagnostic]) -> Set[str]:
    reachable = _reachable(kernel)
    for block in kernel.blocks:
        if block.label not in reachable:
            out.append(Diagnostic(
                "warning", "unreachable-block",
                f"block {block.label!r} cannot be reached from entry",
            ))
    return reachable


def _check_exit_paths(kernel: Kernel, reachable: Set[str],
                      out: List[Diagnostic]) -> None:
    for label in kernel.exit_labels:
        if label not in reachable:
            continue
        block = kernel.block(label)
        term = block.terminator
        if term is None or not term.opcode.info.is_exit:
            out.append(Diagnostic(
                "warning", "missing-exit",
                f"block {label!r} ends the kernel without EXIT "
                f"(warps fall off the end)",
            ))


def _check_infinite_loops(kernel: Kernel, reachable: Set[str],
                          out: List[Diagnostic]) -> None:
    """A strongly-connected set of blocks with no edge leaving it hangs."""
    # Simple check: from each reachable block, can some exit block be
    # reached?
    exits = set(kernel.exit_labels)
    can_exit: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for block in kernel.blocks:
            label = block.label
            if label in can_exit:
                continue
            succs = kernel.successors(label)
            if label in exits or any(s in can_exit for s in succs):
                can_exit.add(label)
                changed = True
    for label in reachable:
        if label not in can_exit:
            out.append(Diagnostic(
                "error", "no-exit-path",
                f"block {label!r} cannot reach any exit (infinite loop)",
            ))


def _check_dataflow(kernel: Kernel, reachable: Set[str],
                    inputs: Set[Reg], out: List[Diagnostic]) -> None:
    """Conservative may-read-before-write over reachable blocks."""
    written: Set[int] = {r.index for r in inputs}
    preds_set: Set[int] = set()
    flagged_regs: Set[int] = set()
    flagged_preds: Set[int] = set()
    # Approximation: walk blocks in layout order (workload kernels define
    # before use in layout order; back-edge-only definitions are rare and
    # produce at worst a spurious warning).
    for block in kernel.blocks:
        if block.label not in reachable:
            continue
        for insn in block.instructions:
            for r in insn.reg_srcs:
                if r.index not in written and r.index not in flagged_regs:
                    flagged_regs.add(r.index)
                    out.append(Diagnostic(
                        "warning", "read-before-write",
                        f"R{r.index} may be read before any write "
                        f"(reads 0; declare it an input via Reg({r.index}) "
                        f"initialisation if intended)",
                    ))
            for p in insn.pred_srcs:
                if p.index not in preds_set and p.index not in flagged_preds:
                    flagged_preds.add(p.index)
                    out.append(Diagnostic(
                        "warning", "pred-before-setp",
                        f"P{p.index} used before any SETP defines it",
                    ))
            for r in insn.reg_dsts:
                written.add(r.index)
            for p in insn.pred_dsts:
                preds_set.add(p.index)


def _check_untagged_setp(kernel: Kernel, out: List[Diagnostic]) -> None:
    for pc, label, insn in kernel.iter_pcs():
        if insn.opcode is Opcode.SETP and insn.tag is None:
            out.append(Diagnostic(
                "warning", "untagged-setp",
                f"SETP at pc {pc} ({label}) has no tag; its outcome falls "
                f"back to the oracle default",
            ))


def validate_kernel(
    kernel: Kernel,
    inputs: Sequence[Reg] = (Reg(0), Reg(1), Reg(2), Reg(3)),
) -> List[Diagnostic]:
    """Run all checks; returns diagnostics (possibly empty).

    ``inputs`` are the registers initialized at launch (the default matches
    :func:`repro.workloads.base.default_initial_regs`).
    """
    out: List[Diagnostic] = []
    reachable = _check_unreachable(kernel, out)
    _check_exit_paths(kernel, reachable, out)
    _check_infinite_loops(kernel, reachable, out)
    _check_dataflow(kernel, reachable, set(inputs), out)
    _check_untagged_setp(kernel, out)
    return out


def check_kernel(kernel: Kernel,
                 inputs: Sequence[Reg] = (Reg(0), Reg(1), Reg(2), Reg(3)),
                 strict: bool = False) -> None:
    """Raise :class:`KernelValidationError` on errors (or, with
    ``strict=True``, on any diagnostic)."""
    diagnostics = validate_kernel(kernel, inputs)
    bad = [d for d in diagnostics
           if d.severity == "error" or (strict and d.severity == "warning")]
    if bad:
        raise KernelValidationError(bad)
