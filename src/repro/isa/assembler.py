"""Text assembler / disassembler for the virtual ISA.

The format is a thin, readable syntax over :class:`Instruction`::

    .kernel saxpy
    entry:
        ldg   R2, R0
        ffma  R4, R2, R3, R2
        setp  P0, R4, #0
        @P0 bra loop
        exit
    loop:
        mov   R5, #1
        exit

* ``Rn`` — general register, ``Pn`` — predicate, ``#v`` — immediate.
* A leading ``@Pn`` / ``@!Pn`` is a predicate guard.
* For opcodes with destinations, destinations come first.
* ``bra`` takes its target label as the final token.
* ``;`` or ``//`` start a comment.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instructions import Instruction, PredGuard
from .kernel import BasicBlock, Kernel
from .opcodes import Opcode
from .registers import Imm, Operand, Pred, Reg

__all__ = ["assemble", "disassemble", "AssemblerError"]


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""


_OPERAND_RE = re.compile(r"^(R\d+|P\d+|#-?\d+)$")

# Number of destination operands per opcode, for parsing.
_N_DSTS = {
    Opcode.STG: 0,
    Opcode.STS: 0,
    Opcode.BRA: 0,
    Opcode.BAR: 0,
    Opcode.EXIT: 0,
}


def _n_dsts(opcode: Opcode) -> int:
    return _N_DSTS.get(opcode, 1)


def _parse_operand(text: str) -> Operand:
    if not _OPERAND_RE.match(text):
        raise AssemblerError(f"bad operand {text!r}")
    if text.startswith("R"):
        return Reg(int(text[1:]))
    if text.startswith("P"):
        return Pred(int(text[1:]))
    return Imm(int(text[1:]))


def _parse_line(line: str) -> Instruction:
    guard: Optional[PredGuard] = None
    tokens = line.split(None, 1)
    if tokens[0].startswith("@"):
        g = tokens[0][1:]
        negate = g.startswith("!")
        if negate:
            g = g[1:]
        if not g.startswith("P"):
            raise AssemblerError(f"bad guard {tokens[0]!r}")
        guard = PredGuard(Pred(int(g[1:])), negate)
        if len(tokens) < 2:
            raise AssemblerError(f"guard with no instruction: {line!r}")
        line = tokens[1]
        tokens = line.split(None, 1)

    mnemonic = tokens[0].lower()
    try:
        opcode = Opcode(mnemonic)
    except ValueError as exc:
        raise AssemblerError(f"unknown opcode {mnemonic!r}") from exc

    rest = tokens[1].strip() if len(tokens) > 1 else ""
    if opcode.info.is_branch:
        if not rest:
            raise AssemblerError("bra requires a target label")
        return Instruction(opcode, (), (), guard=guard, target=rest)

    operands = [_parse_operand(t.strip()) for t in rest.split(",")] if rest else []
    nd = _n_dsts(opcode)
    if len(operands) < nd:
        raise AssemblerError(f"{mnemonic} needs at least {nd} operand(s)")
    dsts = tuple(operands[:nd])
    srcs = tuple(operands[nd:])
    return Instruction(opcode, dsts, srcs, guard=guard)


def assemble(text: str, name: Optional[str] = None) -> Kernel:
    """Parse assembly text into a :class:`Kernel`."""
    kernel_name = name or "kernel"
    blocks: List[Tuple[str, List[Instruction]]] = []
    current: Optional[List[Instruction]] = None

    for raw_line in text.splitlines():
        line = raw_line.split(";")[0].split("//")[0].strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblerError(f"bad directive: {raw_line!r}")
            kernel_name = parts[1]
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label:
                raise AssemblerError("empty label")
            current = []
            blocks.append((label, current))
            continue
        if current is None:
            current = []
            blocks.append(("entry", current))
        if current and blocks:
            # A control instruction ends a basic block; anything following
            # it on the same label starts an implicit continuation block.
            last = current[-1] if current else None
            if last is not None and (
                last.opcode.info.is_branch or last.opcode.info.is_exit
            ):
                current = []
                blocks.append((f"{blocks[-1][0]}.cont{len(blocks)}", current))
        current.append(_parse_line(line))

    if not blocks:
        raise AssemblerError("no instructions found")
    return Kernel(kernel_name, [BasicBlock(lbl, insns) for lbl, insns in blocks])


def _format_operand(op: Operand) -> str:
    if isinstance(op, Imm):
        return f"#{op.value}"
    return repr(op)


def disassemble(kernel: Kernel) -> str:
    """Render a kernel back to assembly text; round-trips with assemble()."""
    lines = [f".kernel {kernel.name}"]
    for block in kernel.blocks:
        lines.append(f"{block.label}:")
        for insn in block.instructions:
            parts = []
            if insn.guard is not None:
                bang = "!" if insn.guard.negate else ""
                parts.append(f"@{bang}{insn.guard.pred}")
            parts.append(insn.opcode.value)
            if insn.target is not None:
                parts.append(insn.target)
            else:
                ops = [_format_operand(o) for o in insn.dsts + insn.srcs]
                if ops:
                    parts.append(", ".join(ops))
            lines.append("    " + " ".join(parts))
    return "\n".join(lines) + "\n"
