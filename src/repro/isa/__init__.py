"""Virtual GPU ISA: registers, opcodes, instructions, kernels, builder."""

from .assembler import AssemblerError, assemble, disassemble
from .builder import KernelBuilder
from .instructions import Instruction, PredGuard
from .kernel import BasicBlock, Kernel
from .opcodes import FuncUnit, Opcode, OpInfo, OPCODE_INFO
from .registers import Imm, Operand, Pred, Reg, REGISTER_BYTES, WARP_WIDTH
from .validate import (
    Diagnostic,
    KernelValidationError,
    check_kernel,
    validate_kernel,
)

__all__ = [
    "AssemblerError",
    "assemble",
    "disassemble",
    "KernelBuilder",
    "Instruction",
    "PredGuard",
    "BasicBlock",
    "Kernel",
    "FuncUnit",
    "Opcode",
    "OpInfo",
    "OPCODE_INFO",
    "Imm",
    "Operand",
    "Pred",
    "Reg",
    "REGISTER_BYTES",
    "WARP_WIDTH",
    "Diagnostic",
    "KernelValidationError",
    "check_kernel",
    "validate_kernel",
]
