"""Operand kinds for the virtual GPU ISA.

The ISA distinguishes three operand kinds:

* :class:`Reg` — an architectural vector register.  Each register holds one
  32-bit value per SIMD lane (32 lanes per warp), so one register occupies a
  128-byte line in the register file / operand staging unit.
* :class:`Pred` — a 1-bit-per-lane predicate register.  Predicates live in a
  small dedicated structure and are *not* managed by RegLess (matching the
  paper, which manages only the general register file).
* :class:`Imm` — an immediate constant, uniform across lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Reg", "Pred", "Imm", "Operand", "WARP_WIDTH", "REGISTER_BYTES"]

#: Number of SIMD lanes per warp (NVIDIA-style).
WARP_WIDTH = 32

#: Bytes occupied by one warp-register (32 lanes x 4 bytes).
REGISTER_BYTES = WARP_WIDTH * 4


@dataclass(frozen=True, order=True)
class Reg:
    """An architectural vector register ``R<index>``."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be >= 0, got {self.index}")

    def __repr__(self) -> str:
        return f"R{self.index}"


@dataclass(frozen=True, order=True)
class Pred:
    """A predicate register ``P<index>`` (one bit per lane)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"predicate index must be >= 0, got {self.index}")

    def __repr__(self) -> str:
        return f"P{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand, uniform across all lanes."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Pred, Imm]
