"""Opcodes of the virtual GPU ISA.

Each opcode carries static properties used by both the compiler and the
timing simulator: which functional unit executes it, its result latency, and
classification flags (load / store / branch / barrier / exit).

The latency classes follow the usual GPGPU-sim-style split:

* ``ALU``   — integer / single-precision ops, short fixed latency.
* ``SFU``   — special-function ops (rsqrt, sin, exp), longer latency, fewer
  units.
* ``MEM``   — loads/stores; their latency is decided dynamically by the
  memory hierarchy, the value here is only the minimum (hit) pipeline depth.
* ``CTRL``  — branches, barriers, exit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FuncUnit", "Opcode", "OPCODE_INFO", "OpInfo"]


class FuncUnit(enum.Enum):
    """Functional-unit class an opcode issues to."""

    ALU = "alu"
    SFU = "sfu"
    MEM = "mem"
    CTRL = "ctrl"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    unit: FuncUnit
    latency: int
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_barrier: bool = False
    is_exit: bool = False


class Opcode(enum.Enum):
    """All opcodes of the virtual ISA."""

    # Integer ALU
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IMAD = "imad"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    IMIN = "imin"
    IMAX = "imax"
    MOV = "mov"
    SEL = "sel"
    CVT = "cvt"
    # Float ALU
    FADD = "fadd"
    FMUL = "fmul"
    FFMA = "ffma"
    FMIN = "fmin"
    FMAX = "fmax"
    SETP = "setp"
    # Special function unit
    RCP = "rcp"
    RSQ = "rsq"
    SIN = "sin"
    EX2 = "ex2"
    LG2 = "lg2"
    FDIV = "fdiv"
    # Memory
    LDG = "ldg"  # global load
    STG = "stg"  # global store
    LDS = "lds"  # shared-memory load
    STS = "sts"  # shared-memory store
    # Control
    BRA = "bra"
    BAR = "bar"
    EXIT = "exit"

    # ``info`` and ``is_global_load`` are plain member attributes, assigned
    # right below OPCODE_INFO: they are the simulator's hottest fields and
    # a property would redo a descriptor call + dict lookup on every access.
    info: OpInfo
    is_global_load: bool

    @property
    def is_memory(self) -> bool:
        return self.info.unit is FuncUnit.MEM


_ALU = FuncUnit.ALU
_SFU = FuncUnit.SFU
_MEM = FuncUnit.MEM
_CTRL = FuncUnit.CTRL

OPCODE_INFO: dict = {
    Opcode.IADD: OpInfo(_ALU, 4),
    Opcode.ISUB: OpInfo(_ALU, 4),
    Opcode.IMUL: OpInfo(_ALU, 6),
    Opcode.IMAD: OpInfo(_ALU, 6),
    Opcode.AND: OpInfo(_ALU, 4),
    Opcode.OR: OpInfo(_ALU, 4),
    Opcode.XOR: OpInfo(_ALU, 4),
    Opcode.SHL: OpInfo(_ALU, 4),
    Opcode.SHR: OpInfo(_ALU, 4),
    Opcode.IMIN: OpInfo(_ALU, 4),
    Opcode.IMAX: OpInfo(_ALU, 4),
    Opcode.MOV: OpInfo(_ALU, 2),
    Opcode.SEL: OpInfo(_ALU, 4),
    Opcode.CVT: OpInfo(_ALU, 4),
    Opcode.FADD: OpInfo(_ALU, 4),
    Opcode.FMUL: OpInfo(_ALU, 4),
    Opcode.FFMA: OpInfo(_ALU, 6),
    Opcode.FMIN: OpInfo(_ALU, 4),
    Opcode.FMAX: OpInfo(_ALU, 4),
    Opcode.SETP: OpInfo(_ALU, 4),
    Opcode.RCP: OpInfo(_SFU, 16),
    Opcode.RSQ: OpInfo(_SFU, 16),
    Opcode.SIN: OpInfo(_SFU, 16),
    Opcode.EX2: OpInfo(_SFU, 16),
    Opcode.LG2: OpInfo(_SFU, 16),
    Opcode.FDIV: OpInfo(_SFU, 24),
    Opcode.LDG: OpInfo(_MEM, 2, is_load=True),
    Opcode.STG: OpInfo(_MEM, 2, is_store=True),
    Opcode.LDS: OpInfo(_MEM, 24, is_load=True),
    Opcode.STS: OpInfo(_MEM, 2, is_store=True),
    Opcode.BRA: OpInfo(_CTRL, 2, is_branch=True),
    Opcode.BAR: OpInfo(_CTRL, 2, is_barrier=True),
    Opcode.EXIT: OpInfo(_CTRL, 1, is_exit=True),
}

for _op in Opcode:
    _op.info = OPCODE_INFO[_op]
    _op.is_global_load = _op is Opcode.LDG
del _op
