"""Instruction representation for the virtual GPU ISA.

An :class:`Instruction` is a small immutable record: opcode, destination
registers, source operands, an optional predicate guard, and an optional
branch target label.  Helper accessors expose the register sets the compiler
needs (reads / writes of general registers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import FuncUnit, Opcode, OpInfo
from .registers import Imm, Operand, Pred, Reg

__all__ = ["Instruction", "PredGuard"]


@dataclass(frozen=True)
class PredGuard:
    """A predicate guard ``@P<i>`` or ``@!P<i>`` on an instruction."""

    pred: Pred
    negate: bool = False

    def __repr__(self) -> str:
        bang = "!" if self.negate else ""
        return f"@{bang}{self.pred}"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    Attributes:
        opcode: the operation.
        dsts: destination registers (general or predicate).
        srcs: source operands.
        guard: optional predicate guard; a guarded instruction only writes
            lanes where the guard holds, which makes its register writes
            *soft definitions* for liveness purposes (paper section 4.4).
        target: branch-target basic-block label (``BRA`` only).
        tag: optional workload tag; the simulator's branch/value oracles are
            keyed by it (e.g. a ``SETP`` tagged ``"loop"`` gets loop-trip
            behaviour from the workload definition).
    """

    opcode: Opcode
    dsts: Tuple[Operand, ...] = ()
    srcs: Tuple[Operand, ...] = ()
    guard: Optional[PredGuard] = None
    target: Optional[str] = None
    tag: Optional[str] = None

    # Register accessors, precomputed once at construction: the simulator's
    # scoreboard and issue loop read these every cycle, so they must be
    # plain attribute loads rather than recomputed properties.
    #: general registers written by this instruction.
    reg_dsts: Tuple[Reg, ...] = field(init=False, repr=False, compare=False)
    #: general registers read by this instruction.
    reg_srcs: Tuple[Reg, ...] = field(init=False, repr=False, compare=False)
    pred_dsts: Tuple[Pred, ...] = field(init=False, repr=False, compare=False)
    #: predicate sources, including the guard predicate.
    pred_srcs: Tuple[Pred, ...] = field(init=False, repr=False, compare=False)
    #: all general registers referenced (reads then writes).
    regs: Tuple[Reg, ...] = field(init=False, repr=False, compare=False)

    # Denormalized static properties for the simulator's per-cycle loops
    # (scoreboard check, stall classification, issue): plain ints/bools
    # here replace ``insn.opcode.info.unit``-style chains and per-operand
    # ``.index`` loads in code that runs hundreds of thousands of times.
    #: ``opcode.info``, pre-resolved.
    info: "OpInfo" = field(init=False, repr=False, compare=False)
    #: issues to the memory pipeline (LDG/STG/LDS/STS).
    is_mem: bool = field(init=False, repr=False, compare=False)
    #: result latency (``opcode.info.latency``).
    latency: int = field(init=False, repr=False, compare=False)
    #: indices of ``regs`` / ``reg_srcs`` / ``reg_dsts``.
    reg_idx: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    src_idx: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    dst_idx: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    #: indices of every predicate the scoreboard must check (srcs + dsts).
    pred_idx: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    #: indices of ``pred_dsts``.
    pred_dst_idx: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    #: lazily-built functional-execution closure (``repro.sim.executor``
    #: owns this; a cache slot, not part of the instruction's identity).
    exec_plan: object = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.opcode.info.is_branch and self.target is None:
            raise ValueError("BRA requires a target label")
        if self.target is not None and not self.opcode.info.is_branch:
            raise ValueError(f"{self.opcode} cannot carry a branch target")
        for d in self.dsts:
            if isinstance(d, Imm):
                raise ValueError("immediate cannot be a destination")
        set_ = object.__setattr__  # frozen dataclass
        reg_dsts = tuple(d for d in self.dsts if isinstance(d, Reg))
        reg_srcs = tuple(s for s in self.srcs if isinstance(s, Reg))
        pred_srcs = [s for s in self.srcs if isinstance(s, Pred)]
        if self.guard is not None:
            pred_srcs.append(self.guard.pred)
        pred_dsts = tuple(d for d in self.dsts if isinstance(d, Pred))
        set_(self, "reg_dsts", reg_dsts)
        set_(self, "reg_srcs", reg_srcs)
        set_(self, "pred_dsts", pred_dsts)
        set_(self, "pred_srcs", tuple(pred_srcs))
        set_(self, "regs", reg_srcs + reg_dsts)
        info = self.opcode.info
        set_(self, "info", info)
        set_(self, "is_mem", info.unit is FuncUnit.MEM)
        set_(self, "latency", info.latency)
        set_(self, "reg_idx", tuple(r.index for r in reg_srcs + reg_dsts))
        set_(self, "src_idx", tuple(r.index for r in reg_srcs))
        set_(self, "dst_idx", tuple(r.index for r in reg_dsts))
        set_(self, "pred_idx",
             tuple(p.index for p in tuple(pred_srcs) + pred_dsts))
        set_(self, "pred_dst_idx", tuple(p.index for p in pred_dsts))
        set_(self, "exec_plan", None)

    # ``exec_plan`` holds closures (unpicklable, and meaningless outside
    # the process that built them); pickling drops it and unpickling
    # restores an empty cache slot.
    def __getstate__(self):
        return {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "exec_plan"
        }

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):  # pre-cache-slot pickles: (None, slots)
            state = state[1] or {}
        set_ = object.__setattr__
        for name, value in state.items():
            if name != "exec_plan":
                set_(self, name, value)
        set_(self, "exec_plan", None)

    @property
    def is_guarded(self) -> bool:
        return self.guard is not None

    def __repr__(self) -> str:
        parts = []
        if self.guard is not None:
            parts.append(repr(self.guard))
        parts.append(self.opcode.value)
        ops = list(self.dsts) + list(self.srcs)
        if ops:
            parts.append(", ".join(repr(o) for o in ops))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        return " ".join(parts)
