"""Fluent builder for constructing kernels programmatically.

All workload kernels in :mod:`repro.workloads` are written against this API::

    b = KernelBuilder("saxpy")
    b.block("entry")
    x, y, a = b.fresh(3)
    b.ldg(x, b.reg(0))
    b.ldg(y, b.reg(1))
    b.ffma(a, x, y, x)
    b.stg(b.reg(1), a)
    b.exit()
    kernel = b.build()

Blocks are laid out in the order they are opened; a block falls through to
the next one unless terminated by an unconditional branch or ``EXIT``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .instructions import Instruction, PredGuard
from .kernel import BasicBlock, Kernel
from .opcodes import Opcode
from .registers import Imm, Operand, Pred, Reg

__all__ = ["KernelBuilder"]

RegLike = Union[Reg, int]
SrcLike = Union[Reg, Pred, Imm, int]


def _as_reg(r: RegLike) -> Reg:
    return r if isinstance(r, Reg) else Reg(r)


def _as_src(s: SrcLike) -> Operand:
    if isinstance(s, (Reg, Pred, Imm)):
        return s
    return Imm(s)


class KernelBuilder:
    """Incrementally assemble a :class:`~repro.isa.kernel.Kernel`."""

    def __init__(self, name: str):
        self.name = name
        self._blocks: List[Tuple[str, List[Instruction]]] = []
        self._current: Optional[List[Instruction]] = None
        self._next_reg = 0
        self._next_pred = 0
        self._next_label = 0

    # -- structure -----------------------------------------------------------

    def block(self, label: Optional[str] = None) -> str:
        """Open a new basic block and make it current; returns its label."""
        if label is None:
            label = f"bb{self._next_label}"
            self._next_label += 1
        if any(lbl == label for lbl, _ in self._blocks):
            raise ValueError(f"duplicate block label {label!r}")
        insns: List[Instruction] = []
        self._blocks.append((label, insns))
        self._current = insns
        return label

    def label(self) -> str:
        """Reserve a fresh label without opening the block yet."""
        label = f"bb{self._next_label}"
        self._next_label += 1
        return label

    def block_named(self, label: str) -> str:
        """Open a block with a label previously obtained from :meth:`label`."""
        if any(lbl == label for lbl, _ in self._blocks):
            raise ValueError(f"duplicate block label {label!r}")
        insns: List[Instruction] = []
        self._blocks.append((label, insns))
        self._current = insns
        return label

    # -- operand allocation ----------------------------------------------------

    def reg(self, index: int) -> Reg:
        """A fixed architectural register (kernel-parameter style)."""
        self._next_reg = max(self._next_reg, index + 1)
        return Reg(index)

    def fresh(self, n: int = 1) -> Union[Reg, Tuple[Reg, ...]]:
        """Allocate ``n`` fresh registers."""
        regs = tuple(Reg(self._next_reg + i) for i in range(n))
        self._next_reg += n
        if n == 1:
            return regs[0]
        return regs

    def fresh_pred(self) -> Pred:
        p = Pred(self._next_pred)
        self._next_pred += 1
        return p

    # -- generic emission --------------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        dsts: Sequence[Union[Reg, Pred]] = (),
        srcs: Sequence[SrcLike] = (),
        guard: Optional[PredGuard] = None,
        target: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> Instruction:
        if self._current is None:
            raise RuntimeError("open a block before emitting instructions")
        insn = Instruction(
            opcode=opcode,
            dsts=tuple(dsts),
            srcs=tuple(_as_src(s) for s in srcs),
            guard=guard,
            target=target,
            tag=tag,
        )
        self._current.append(insn)
        return insn

    def guard(self, pred: Pred, negate: bool = False) -> PredGuard:
        return PredGuard(pred, negate)

    # -- ALU helpers ---------------------------------------------------------------

    def _alu3(self, op: Opcode, d: RegLike, a: SrcLike, c: SrcLike,
              guard: Optional[PredGuard] = None) -> Instruction:
        return self.emit(op, [_as_reg(d)], [a, c], guard=guard)

    def iadd(self, d, a, c, guard=None):
        return self._alu3(Opcode.IADD, d, a, c, guard)

    def isub(self, d, a, c, guard=None):
        return self._alu3(Opcode.ISUB, d, a, c, guard)

    def imul(self, d, a, c, guard=None):
        return self._alu3(Opcode.IMUL, d, a, c, guard)

    def imad(self, d, a, b_, c, guard=None):
        return self.emit(Opcode.IMAD, [_as_reg(d)], [a, b_, c], guard=guard)

    def and_(self, d, a, c, guard=None):
        return self._alu3(Opcode.AND, d, a, c, guard)

    def or_(self, d, a, c, guard=None):
        return self._alu3(Opcode.OR, d, a, c, guard)

    def xor(self, d, a, c, guard=None):
        return self._alu3(Opcode.XOR, d, a, c, guard)

    def shl(self, d, a, c, guard=None):
        return self._alu3(Opcode.SHL, d, a, c, guard)

    def shr(self, d, a, c, guard=None):
        return self._alu3(Opcode.SHR, d, a, c, guard)

    def imin(self, d, a, c, guard=None):
        return self._alu3(Opcode.IMIN, d, a, c, guard)

    def imax(self, d, a, c, guard=None):
        return self._alu3(Opcode.IMAX, d, a, c, guard)

    def mov(self, d, a, guard=None):
        return self.emit(Opcode.MOV, [_as_reg(d)], [a], guard=guard)

    def sel(self, d, a, c, p, guard=None):
        return self.emit(Opcode.SEL, [_as_reg(d)], [a, c, p], guard=guard)

    def cvt(self, d, a, guard=None):
        return self.emit(Opcode.CVT, [_as_reg(d)], [a], guard=guard)

    def fadd(self, d, a, c, guard=None):
        return self._alu3(Opcode.FADD, d, a, c, guard)

    def fmul(self, d, a, c, guard=None):
        return self._alu3(Opcode.FMUL, d, a, c, guard)

    def ffma(self, d, a, b_, c, guard=None):
        return self.emit(Opcode.FFMA, [_as_reg(d)], [a, b_, c], guard=guard)

    def fmin(self, d, a, c, guard=None):
        return self._alu3(Opcode.FMIN, d, a, c, guard)

    def fmax(self, d, a, c, guard=None):
        return self._alu3(Opcode.FMAX, d, a, c, guard)

    def setp(self, p: Pred, a: SrcLike, c: SrcLike, guard=None,
             tag: Optional[str] = None) -> Instruction:
        return self.emit(Opcode.SETP, [p], [a, c], guard=guard, tag=tag)

    # -- SFU helpers -------------------------------------------------------------------

    def rcp(self, d, a, guard=None):
        return self.emit(Opcode.RCP, [_as_reg(d)], [a], guard=guard)

    def rsq(self, d, a, guard=None):
        return self.emit(Opcode.RSQ, [_as_reg(d)], [a], guard=guard)

    def sin(self, d, a, guard=None):
        return self.emit(Opcode.SIN, [_as_reg(d)], [a], guard=guard)

    def ex2(self, d, a, guard=None):
        return self.emit(Opcode.EX2, [_as_reg(d)], [a], guard=guard)

    def lg2(self, d, a, guard=None):
        return self.emit(Opcode.LG2, [_as_reg(d)], [a], guard=guard)

    def fdiv(self, d, a, c, guard=None):
        return self._alu3(Opcode.FDIV, d, a, c, guard)

    # -- memory helpers ------------------------------------------------------------------

    def ldg(self, d, addr, guard=None, tag: Optional[str] = None):
        """Global load: ``d = [addr]``."""
        return self.emit(Opcode.LDG, [_as_reg(d)], [addr], guard=guard, tag=tag)

    def stg(self, addr, value, guard=None):
        """Global store: ``[addr] = value``."""
        return self.emit(Opcode.STG, [], [addr, value], guard=guard)

    def lds(self, d, addr, guard=None):
        return self.emit(Opcode.LDS, [_as_reg(d)], [addr], guard=guard)

    def sts(self, addr, value, guard=None):
        return self.emit(Opcode.STS, [], [addr, value], guard=guard)

    # -- control helpers ------------------------------------------------------------------

    def bra(self, target: str, pred: Optional[Pred] = None,
            negate: bool = False) -> Instruction:
        guard = PredGuard(pred, negate) if pred is not None else None
        return self.emit(Opcode.BRA, [], [], guard=guard, target=target)

    def bar(self) -> Instruction:
        return self.emit(Opcode.BAR)

    def exit(self) -> Instruction:
        return self.emit(Opcode.EXIT)

    # -- finalization ------------------------------------------------------------------------

    def build(self) -> Kernel:
        blocks = [BasicBlock(lbl, insns) for lbl, insns in self._blocks]
        return Kernel(self.name, blocks)
