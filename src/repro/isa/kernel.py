"""Kernels, basic blocks, and the control-flow graph.

A :class:`Kernel` is an ordered list of :class:`BasicBlock`.  Control flow is
implicit: a block falls through to the next block in order unless it ends in
an unconditional branch or ``EXIT``; a (possibly guarded) ``BRA`` adds an
edge to its target label.

Every instruction also has a *global PC* — its index in the flattened
instruction list — which is the coordinate system used by the region-creation
compiler pass (regions are PC ranges inside one block) and by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .instructions import Instruction
from .opcodes import Opcode
from .registers import Reg

__all__ = ["BasicBlock", "Kernel"]


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    label: str
    instructions: List[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        for i, insn in enumerate(self.instructions[:-1]):
            info = insn.opcode.info
            if info.is_branch or info.is_exit:
                raise ValueError(
                    f"block {self.label!r}: control instruction {insn!r} "
                    f"at position {i} is not the terminator"
                )

    @property
    def terminator(self) -> Optional[Instruction]:
        """The trailing control instruction, if any."""
        if not self.instructions:
            return None
        last = self.instructions[-1]
        info = last.opcode.info
        if info.is_branch or info.is_exit:
            return last
        return None

    @property
    def falls_through(self) -> bool:
        """True when control can reach the next block in layout order."""
        term = self.terminator
        if term is None:
            return True
        if term.opcode.info.is_exit:
            return False
        # A guarded branch is conditional: not-taken lanes fall through.
        return term.is_guarded

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)


class Kernel:
    """A GPU kernel: ordered basic blocks plus derived CFG and PC views."""

    def __init__(self, name: str, blocks: Sequence[BasicBlock]):
        if not blocks:
            raise ValueError("kernel needs at least one basic block")
        labels = [b.label for b in blocks]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate block labels in kernel {name!r}")
        self.name = name
        self.blocks: List[BasicBlock] = list(blocks)
        self._by_label: Dict[str, BasicBlock] = {b.label: b for b in blocks}
        self._block_index: Dict[str, int] = {b.label: i for i, b in enumerate(blocks)}
        self._check_targets()
        self._build_pcs()
        self._build_cfg()

    # -- construction helpers ------------------------------------------------

    def _check_targets(self) -> None:
        for block in self.blocks:
            term = block.terminator
            if term is not None and term.target is not None:
                if term.target not in self._by_label:
                    raise ValueError(
                        f"block {block.label!r} branches to unknown label "
                        f"{term.target!r}"
                    )

    def _build_pcs(self) -> None:
        self._flat: List[Tuple[str, Instruction]] = []
        self._block_start_pc: Dict[str, int] = {}
        for block in self.blocks:
            self._block_start_pc[block.label] = len(self._flat)
            for insn in block.instructions:
                self._flat.append((block.label, insn))

    def _build_cfg(self) -> None:
        self._succs: Dict[str, List[str]] = {}
        self._preds: Dict[str, List[str]] = {b.label: [] for b in self.blocks}
        for i, block in enumerate(self.blocks):
            succs: List[str] = []
            term = block.terminator
            if term is not None and term.target is not None:
                succs.append(term.target)
            if block.falls_through and i + 1 < len(self.blocks):
                nxt = self.blocks[i + 1].label
                if nxt not in succs:
                    succs.append(nxt)
            self._succs[block.label] = succs
            for s in succs:
                self._preds[s].append(block.label)

    # -- block / label views --------------------------------------------------

    @property
    def entry(self) -> str:
        return self.blocks[0].label

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def block_index(self, label: str) -> int:
        return self._block_index[label]

    def successors(self, label: str) -> List[str]:
        return list(self._succs[label])

    def predecessors(self, label: str) -> List[str]:
        return list(self._preds[label])

    @property
    def exit_labels(self) -> List[str]:
        return [b.label for b in self.blocks if not self._succs[b.label]]

    # -- PC views --------------------------------------------------------------

    @property
    def num_instructions(self) -> int:
        return len(self._flat)

    def insn_at(self, pc: int) -> Instruction:
        return self._flat[pc][1]

    def block_of_pc(self, pc: int) -> str:
        return self._flat[pc][0]

    def block_start_pc(self, label: str) -> int:
        return self._block_start_pc[label]

    def block_end_pc(self, label: str) -> int:
        """One past the last PC of the block."""
        return self._block_start_pc[label] + len(self._by_label[label])

    def pcs_of_block(self, label: str) -> range:
        return range(self.block_start_pc(label), self.block_end_pc(label))

    def iter_pcs(self) -> Iterator[Tuple[int, str, Instruction]]:
        for pc, (label, insn) in enumerate(self._flat):
            yield pc, label, insn

    # -- register statistics ----------------------------------------------------

    @property
    def registers(self) -> List[Reg]:
        """All general registers referenced, sorted by index."""
        seen = set()
        for _, insn in self._flat:
            seen.update(insn.regs)
        return sorted(seen)

    @property
    def num_regs(self) -> int:
        regs = self.registers
        return (max(r.index for r in regs) + 1) if regs else 0

    @property
    def has_exit(self) -> bool:
        return any(i.opcode is Opcode.EXIT for _, i in self._flat)

    def __repr__(self) -> str:
        return (
            f"Kernel({self.name!r}, blocks={len(self.blocks)}, "
            f"insns={self.num_instructions}, regs={self.num_regs})"
        )
